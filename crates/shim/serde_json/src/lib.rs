//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! the [`Value`] tree (re-exported from the serde shim), the [`json!`]
//! macro, and the `to_string` / `from_str` / `to_value` / `from_value`
//! entry points.
//!
//! The text format is standard JSON. One deliberate divergence from the
//! real crate: maps serialize as `[key, value]` entry arrays (see the
//! serde shim), which lets tuple-keyed maps round-trip.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree has the wrong shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or mismatched shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] with JSON-like syntax.
///
/// Supports `null`, `true`/`false`, nested `[...]` arrays and
/// `{"key": value}` objects, and arbitrary serializable Rust
/// expressions in value position — a tt-muncher in the style of the
/// real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ----- array element munching: @array [built elements] rest...
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object entry munching: @object map (partial key) (rest) (copy)
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- entry points
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (trailing whitespace allowed).
fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are unsupported (the shim
                            // never emits them); map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        let mut is_float = false;
        if let Some(b'-') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let ids = vec![1u64, 2, 3];
        let v = json!({"ids": ids, "size": [16usize, 32usize], "ok": true, "name": "x"});
        assert_eq!(v["ids"][1], 2);
        assert_eq!(v["size"], json!([16, 32]));
        assert_eq!(v["ok"], true);
        assert_eq!(v["name"], "x");
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7i64), Value::Number(Number::PosInt(7)));
    }

    #[test]
    fn text_round_trip() {
        let v = json!({"a": [1, 2], "b": {"c": "hi \"quoted\"\n"}, "d": null, "e": -4, "f": 1.5});
        let text = v.to_string();
        let back: Value = from_str(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nulL").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = json!({"s": "αβ\t\"x\""});
        let back: Value = from_str(&v.to_string()).expect("parses");
        assert_eq!(back, v);
        let unicode: Value = from_str("\"\\u0041\"").expect("parses");
        assert_eq!(unicode, "A");
    }
}
