//! Derive-level contract tests for the shapes the wire envelopes rely
//! on. Each test pins a behavior the real serde also has, so swapping
//! the real crates back in (a `[workspace.dependencies]` edit) cannot
//! silently change the wire format.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Envelope {
    id: Value,
    flag: Option<u64>,
    body: Outcome,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Outcome {
    Ok(Payload),
    Err { kind: String, message: String },
    Pending,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Payload {
    items: Vec<u64>,
    label: String,
}

fn sample() -> Envelope {
    Envelope {
        id: Value::String("job-1".into()),
        flag: Some(3),
        body: Outcome::Ok(Payload {
            items: vec![1, 2, 3],
            label: "x".into(),
        }),
    }
}

#[test]
fn struct_with_value_field_round_trips() {
    let envelope = sample();
    let back = Envelope::from_value(&envelope.to_value()).expect("round-trips");
    assert_eq!(back, envelope);
}

#[test]
fn newtype_variant_is_externally_tagged() {
    let value = sample().body.to_value();
    let object = value.as_object().expect("tagged object");
    assert_eq!(object.len(), 1);
    assert!(object.contains_key("Ok"));
    let back = Outcome::from_value(&value).expect("parses");
    assert_eq!(back, sample().body);
}

#[test]
fn named_field_variant_round_trips() {
    let err = Outcome::Err {
        kind: "InvalidRequest".into(),
        message: "nope".into(),
    };
    let value = err.to_value();
    assert!(value.get("Err").is_some());
    assert_eq!(Outcome::from_value(&value).expect("parses"), err);
}

#[test]
fn unit_variant_serializes_as_string() {
    let value = Outcome::Pending.to_value();
    assert_eq!(value, "Pending");
    assert_eq!(
        Outcome::from_value(&value).expect("parses"),
        Outcome::Pending
    );
}

#[test]
fn multiple_variant_tags_are_rejected() {
    // {"Ok": ..., "Err": ...} is ambiguous; real serde rejects it and
    // so must the shim (no first-match-wins).
    let ok = sample().body.to_value();
    let err = Outcome::Err {
        kind: "k".into(),
        message: "m".into(),
    }
    .to_value();
    let mut merged = serde::Map::new();
    merged.insert("Ok".to_owned(), ok.get("Ok").expect("tag present").clone());
    merged.insert(
        "Err".to_owned(),
        err.get("Err").expect("tag present").clone(),
    );
    let error = Outcome::from_value(&Value::Object(merged)).expect_err("ambiguous tag");
    assert!(error.to_string().contains("exactly one variant tag"));
}

#[test]
fn empty_object_is_rejected_for_enums() {
    let error = Outcome::from_value(&Value::Object(serde::Map::new())).expect_err("no variant tag");
    assert!(error.to_string().contains("exactly one"));
}

#[test]
fn unknown_variants_are_rejected() {
    let error = Outcome::from_value(&Value::String("Bogus".into())).expect_err("unknown unit");
    assert!(error.to_string().contains("unknown variant"));
    let mut object = serde::Map::new();
    object.insert("Bogus".to_owned(), Value::Null);
    assert!(Outcome::from_value(&Value::Object(object)).is_err());
}

#[test]
fn missing_option_field_reads_as_none() {
    // The derive treats an absent key as null; Option absorbs it —
    // matching real serde's implicit-default for Option fields.
    let mut object = sample().to_value().as_object().expect("object").clone();
    object.remove("flag");
    let back = Envelope::from_value(&Value::Object(object)).expect("parses");
    assert_eq!(back.flag, None);
}

#[test]
fn missing_required_field_errors() {
    let mut object = sample().to_value().as_object().expect("object").clone();
    object.remove("body");
    assert!(Envelope::from_value(&Value::Object(object)).is_err());
}
