//! The JSON-shaped value tree all (de)serialization goes through.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys give deterministic output.
pub type Map = BTreeMap<String, Value>;

/// A JSON number, preserving integer-ness where possible.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integers.
    PosInt(u64),
    /// Negative integers.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Number {
    /// Value as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// Value as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// Value as `f64` (always representable, possibly lossily).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(v) => Some(v as f64),
            Number::NegInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) if v.is_finite() => write!(f, "{v}"),
            // JSON has no NaN/Inf; emit null like serde_json does.
            Number::Float(_) => f.write_str("null"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with string keys.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` when the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if any.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if any.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if any.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` on other kinds.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(unused_comparisons)]
                match self {
                    Value::Number(n) => {
                        if *other >= 0 {
                            n.as_u64() == Some(*other as u64)
                        } else {
                            n.as_i64() == Some(*other as i64)
                        }
                    }
                    _ => false,
                }
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Writes `s` as a JSON string literal.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
