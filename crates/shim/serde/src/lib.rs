//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde is a zero-copy visitor framework; this shim is a
//! value-tree design: [`Serialize`] renders any type into a JSON-shaped
//! [`Value`], [`Deserialize`] rebuilds it from one. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, provided by the sibling
//! `serde_derive` proc-macro crate) generate the same externally-tagged
//! representation serde would: structs become objects, unit enum
//! variants become strings, data-carrying variants become
//! `{"Variant": {...}}` objects.
//!
//! `serde_json` (also shimmed) layers the text format on top: `json!`,
//! `to_string`, `from_str`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_prim {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

impl_serialize_prim!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64, bool);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Maps serialize as arrays of `[key, value]` pairs: unlike JSON
/// objects this supports non-string keys (the workspace keys maps by
/// tuples), and round-trips losslessly through `Deserialize`.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            "expected {}, found {value}",
                            stringify!($t)
                        ))
                    })
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            "expected {}, found {value}",
                            stringify!($t)
                        ))
                    })
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, found {value}")))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {value}")))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {value}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {value}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn pair(value: &Value) -> Result<(&Value, &Value), Error> {
    match value.as_array().map(Vec::as_slice) {
        Some([a, b]) => Ok((a, b)),
        _ => Err(Error::custom(format!(
            "expected two-element array, found {value}"
        ))),
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<(A, B), Error> {
        let (a, b) = pair(value)?;
        Ok((A::from_value(a)?, B::from_value(b)?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<(A, B, C), Error> {
        match value.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom(format!(
                "expected three-element array, found {value}"
            ))),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<K, V>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected entry array, found {value}")))?
            .iter()
            .map(|entry| {
                let (k, v) = pair(entry)?;
                Ok((K::from_value(k)?, V::from_value(v)?))
            })
            .collect()
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<HashMap<K, V>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected entry array, found {value}")))?
            .iter()
            .map(|entry| {
                let (k, v) = pair(entry)?;
                Ok((K::from_value(k)?, V::from_value(v)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok(String::from("hi")));
    }

    #[test]
    fn options_and_vectors_round_trip() {
        let v: Option<u64> = None;
        assert!(v.to_value().is_null());
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn tuple_keyed_maps_round_trip() {
        let mut m: HashMap<(u32, String), u64> = HashMap::new();
        m.insert((1, "a".into()), 10);
        m.insert((2, "b".into()), 20);
        let back = HashMap::<(u32, String), u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
    }
}
