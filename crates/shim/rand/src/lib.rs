//! Offline stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace ships
//! its own implementation of the traits the code was written against:
//! [`RngCore`], [`SeedableRng`] and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`. The trait names, bounds and
//! blanket impls mirror `rand 0.8` closely enough that swapping the real
//! crate back in is a one-line manifest change.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the full bit stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform bounded sampler (the `T` of `gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`high` included when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Maps 64 random bits to `[0, span)` by widening multiplication.
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((u128::from(rng_bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = high.abs_diff(low) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
                } else {
                    low.wrapping_add(bounded(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: f64,
        high: f64,
        _inclusive: bool,
    ) -> f64 {
        low + (high - low) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: f32,
        high: f32,
        _inclusive: bool,
    ) -> f32 {
        low + (high - low) * f32::sample(rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform bit stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..=3);
            assert!(u <= 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_sampling() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_supports_extension_methods() {
        let mut rng = Counter(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: usize = dyn_rng.gen_range(0..10);
        assert!(v < 10);
    }
}
