//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream behind
//! the workspace [`rand`] shim traits.
//!
//! Only [`ChaCha8Rng`] is provided — the one generator this workspace
//! uses. Seeding goes through SplitMix64 key expansion, so any `u64`
//! seed yields a well-mixed 256-bit ChaCha key and the stream is fully
//! deterministic per seed.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16]) -> [u32; 16] {
    let mut s = *input;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (word, inp) in s.iter_mut().zip(input) {
        *word = word.wrapping_add(*inp);
    }
    s
}

/// SplitMix64 step — the standard way to expand a small seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of `u32` words in a serialized generator state: the input
/// block, the current keystream block, and the cursor.
pub const STATE_WORDS: usize = 33;

impl ChaCha8Rng {
    /// Exports the complete generator state as [`STATE_WORDS`] words
    /// (input block, keystream block, cursor). A generator rebuilt via
    /// [`ChaCha8Rng::from_state_words`] continues the stream exactly
    /// where this one stands — the hook session snapshots use to make
    /// restored runs byte-identical to uninterrupted ones.
    #[must_use]
    pub fn state_words(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(STATE_WORDS);
        words.extend_from_slice(&self.state);
        words.extend_from_slice(&self.block);
        words.push(self.cursor as u32);
        words
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`] output.
    /// Returns `None` when the word count is wrong or the cursor is
    /// out of range — a corrupted snapshot, never a panic.
    #[must_use]
    pub fn from_state_words(words: &[u32]) -> Option<ChaCha8Rng> {
        if words.len() != STATE_WORDS {
            return None;
        }
        let cursor = words[32] as usize;
        if cursor > 16 {
            return None;
        }
        let mut state = [0u32; 16];
        let mut block = [0u32; 16];
        state.copy_from_slice(&words[0..16]);
        block.copy_from_slice(&words[16..32]);
        Some(ChaCha8Rng {
            state,
            block,
            cursor,
        })
    }

    fn advance_block(&mut self) {
        self.block = chacha_block(&self.state);
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> ChaCha8Rng {
        let mut sm = state;
        let mut s = [0u32; 16];
        // "expand 32-byte k"
        s[0] = 0x6170_7865;
        s[1] = 0x3320_646e;
        s[2] = 0x7962_2d32;
        s[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            s[4 + 2 * i] = k as u32;
            s[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng {
            state: s,
            block: [0; 16],
            cursor: 16,
        };
        rng.advance_block();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.advance_block();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Land mid-block so the cursor matters.
        for _ in 0..21 {
            rng.next_u32();
        }
        let words = rng.state_words();
        assert_eq!(words.len(), STATE_WORDS);
        let mut resumed = ChaCha8Rng::from_state_words(&words).expect("valid state");
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn corrupt_state_words_are_rejected() {
        let rng = ChaCha8Rng::seed_from_u64(1);
        let mut words = rng.state_words();
        assert!(ChaCha8Rng::from_state_words(&words[..32]).is_none());
        words[32] = 17; // cursor out of range
        assert!(ChaCha8Rng::from_state_words(&words).is_none());
    }

    #[test]
    fn stream_spans_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(9);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // Crude uniformity sanity check on the mean bit count.
        let ones: u32 = first.iter().map(|w| w.count_ones()).sum();
        let mean = f64::from(ones) / 40.0;
        assert!((mean - 16.0).abs() < 3.0, "mean bits {mean}");
    }
}
