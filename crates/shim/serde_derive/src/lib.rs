//! `#[derive(Serialize, Deserialize)]` for the workspace serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no `syn`/`quote`). Supports exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit or carry named fields.
//!
//! Generated representation (matching serde's externally-tagged
//! default): structs and struct variants become objects keyed by field
//! name, unit variants become their name as a string, and a
//! data-carrying variant `V { f }` becomes `{"V": {"f": ...}}`.
//! Like real serde, deserializing a tagged enum from an object demands
//! exactly one variant key — `{"Ok": ..., "Err": ...}` is rejected, not
//! first-match-wins (the wire envelopes depend on this). Generics,
//! tuple structs and tuple variants are rejected with a compile error.
//!
//! One field attribute is honoured: `#[serde(default)]` makes a field
//! fall back to `Default::default()` when the key is absent (or null)
//! during deserialization — the forward-compat knob newer stats
//! counters use so old peers' snapshots still parse. Any other content
//! inside `#[serde(...)]` is a compile error rather than a silent
//! behavior change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// One named field: its name plus whether `#[serde(default)]` lets it
/// fall back to `Default::default()` when missing from the input.
struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    /// `V` — serialized as the string `"V"`.
    Unit,
    /// `V { f, ... }` — serialized as `{"V": {"f": ...}}`.
    Named(Vec<Field>),
    /// `V(T)` — serialized as `{"V": <payload>}`.
    Newtype,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

fn expand(input: &TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match (mode, &shape) {
                (Mode::Serialize, Shape::Struct(fields)) => struct_serialize(&name, fields),
                (Mode::Deserialize, Shape::Struct(fields)) => struct_deserialize(&name, fields),
                (Mode::Serialize, Shape::Enum(variants)) => enum_serialize(&name, variants),
                (Mode::Deserialize, Shape::Enum(variants)) => enum_deserialize(&name, variants),
            };
            code.parse().expect("generated impl parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("error token parses"),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Strips leading `#[...]` attribute pairs and a `pub` / `pub(...)`
/// visibility prefix from a token list.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut rest = tokens;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(_), tail @ ..] if p.as_char() == '#' => {
                rest = tail;
            }
            [TokenTree::Ident(i), tail @ ..] if i.to_string() == "pub" => {
                rest = match tail {
                    [TokenTree::Group(g), inner @ ..]
                        if g.delimiter() == Delimiter::Parenthesis =>
                    {
                        inner
                    }
                    _ => tail,
                };
            }
            _ => return rest,
        }
    }
}

/// Splits a token list on commas that sit outside `<...>` nesting.
/// (Parenthesised/bracketed groups are single trees, so only angle
/// brackets need explicit depth tracking.)
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Whether one `#[...]` attribute body is a serde field attribute, and
/// if so, that it contains exactly `default` (anything else inside
/// `#[serde(...)]` is unsupported and must fail loudly).
fn serde_default_attr(body: &TokenStream) -> Result<bool, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(arg)] if arg.to_string() == "default" => Ok(true),
                _ => Err(format!(
                    "serde shim derive supports #[serde(default)] only, found #[serde({})]",
                    args.stream()
                )),
            }
        }
        _ => Ok(false),
    }
}

/// Field name and `#[serde(default)]` flag from one `name: Type` chunk.
fn parse_field(chunk: &[TokenTree]) -> Result<Field, String> {
    let mut default = false;
    let mut rest = chunk;
    while let [TokenTree::Punct(p), TokenTree::Group(g), tail @ ..] = rest {
        if p.as_char() != '#' {
            break;
        }
        default |= serde_default_attr(&g.stream())?;
        rest = tail;
    }
    match skip_attrs_and_vis(rest) {
        [TokenTree::Ident(name), TokenTree::Punct(colon), ..] if colon.as_char() == ':' => {
            Ok(Field {
                name: name.to_string(),
                default,
            })
        }
        _ => Err("serde shim derive supports named fields only".to_owned()),
    }
}

fn parse_named_fields(body: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_top_level_commas(&tokens)
        .iter()
        .map(|chunk| parse_field(chunk))
        .collect()
}

fn parse_variants(body: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    split_top_level_commas(&tokens)
        .iter()
        .map(|chunk| match skip_attrs_and_vis(chunk) {
            [TokenTree::Ident(name)] => Ok(Variant {
                name: name.to_string(),
                shape: VariantShape::Unit,
            }),
            [TokenTree::Ident(name), TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
                Ok(Variant {
                    name: name.to_string(),
                    shape: VariantShape::Named(parse_named_fields(&g.stream())?),
                })
            }
            [TokenTree::Ident(name), TokenTree::Group(g)]
                if g.delimiter() == Delimiter::Parenthesis =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if split_top_level_commas(&inner).len() == 1 {
                    Ok(Variant {
                        name: name.to_string(),
                        shape: VariantShape::Newtype,
                    })
                } else {
                    Err("serde shim derive supports single-field tuple variants only".to_owned())
                }
            }
            _ => Err(
                "serde shim derive supports unit, newtype and named-field variants only".to_owned(),
            ),
        })
        .collect()
}

fn parse(input: &TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let rest = skip_attrs_and_vis(&tokens);
    match rest {
        [TokenTree::Ident(kw), TokenTree::Ident(name), TokenTree::Group(body)]
            if body.delimiter() == Delimiter::Brace =>
        {
            match kw.to_string().as_str() {
                "struct" => Ok((
                    name.to_string(),
                    Shape::Struct(parse_named_fields(&body.stream())?),
                )),
                "enum" => Ok((
                    name.to_string(),
                    Shape::Enum(parse_variants(&body.stream())?),
                )),
                other => Err(format!("cannot derive for `{other}` items")),
            }
        }
        [TokenTree::Ident(_), TokenTree::Ident(name), TokenTree::Punct(p), ..]
            if p.as_char() == '<' =>
        {
            Err(format!(
                "serde shim derive does not support generics on `{name}`"
            ))
        }
        _ => Err("serde shim derive supports braced structs and enums only".to_owned()),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let inserts: String = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!(
                "map.insert(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f}));\n"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut map = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(map)\n\
             }}\n\
         }}"
    )
}

fn fields_from_object(path: &str, fields: &[Field]) -> String {
    let inits: String = fields
        .iter()
        .map(|field| {
            let f = &field.name;
            if field.default {
                // Absent key (older peer) or explicit null both fall
                // back; a present non-null value must still parse.
                format!(
                    "{f}: match obj.get({f:?}) {{\n\
                         ::std::option::Option::Some(found)\n\
                             if !matches!(found, ::serde::Value::Null) =>\n\
                             ::serde::Deserialize::from_value(found)?,\n\
                         _ => ::std::default::Default::default(),\n\
                     }},\n"
                )
            } else {
                format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     obj.get({f:?}).unwrap_or(&::serde::Value::Null))?,\n"
                )
            }
        })
        .collect();
    format!("{path} {{\n{inits}}}")
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let body = fields_from_object(name, fields);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                     format!(\"expected object for struct {name}, found {{value}}\")))?;\n\
                 ::std::result::Result::Ok({body})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => format!(
                    "{name}::{vname} => ::serde::Value::String(\
                     ::std::string::String::from({vname:?})),\n"
                ),
                VariantShape::Newtype => format!(
                    "{name}::{vname}(payload) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(payload));\n\
                         ::serde::Value::Object(map)\n\
                     }}\n"
                ),
                VariantShape::Named(fields) => {
                    let bindings = fields
                        .iter()
                        .map(|f| f.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inserts: String = fields
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "inner.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));\n"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n\
                         }}\n"
                    )
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.shape {
            VariantShape::Unit => None,
            VariantShape::Newtype => Some(format!(
                "if let ::std::option::Option::Some(inner) = map.get({vname:?}) {{\n\
                     return ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?));\n\
                 }}\n",
                vname = &v.name,
            )),
            VariantShape::Named(fields) => {
                let vname = &v.name;
                let body = fields_from_object(&format!("{name}::{vname}"), fields);
                Some(format!(
                    "if let ::std::option::Option::Some(inner) = map.get({vname:?}) {{\n\
                         let obj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object payload for variant {name}::{vname}\")))?;\n\
                         return ::std::result::Result::Ok({body});\n\
                     }}\n"
                ))
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::String(s) = value {{\n\
                     return match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant {{other}} for enum {name}\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::serde::Value::Object(map) = value {{\n\
                     if map.len() != 1 {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected exactly one variant tag for enum {name}, \
                                      found {{}} keys\", map.len())));\n\
                     }}\n\
                     {tagged_arms}\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"cannot deserialize enum {name} from {{value}}\")))\n\
             }}\n\
         }}"
    )
}
