//! CHW feature-map tensors.

/// A `channels × height × width` tensor of `f32` (batch size 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(c: usize, h: usize, w: usize) -> Tensor {
        assert!(c > 0 && h > 0 && w > 0, "tensor dims must be positive");
        Tensor {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Builds a tensor from raw CHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c*h*w`.
    #[must_use]
    pub fn from_data(c: usize, h: usize, w: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), c * h * w, "data length mismatch");
        Tensor { c, h, w, data }
    }

    /// `(channels, height, width)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (dimensions are positive).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat data view (CHW order).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        assert!(
            c < self.c && y < self.h && x < self.w,
            "tensor index out of bounds"
        );
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        assert!(
            c < self.c && y < self.h && x < self.w,
            "tensor index out of bounds"
        );
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// Element-wise sum with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "tensor shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_data(self.c, self.h, self.w, data)
    }

    /// Mean of all elements.
    #[must_use]
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

/// An `n × channels × height × width` batch of feature maps in one
/// contiguous allocation.
///
/// The batched inference path (`Conv2d::forward_batch`,
/// `UNet::forward_batch`) streams N samples through each layer using
/// one buffer per stage instead of N — sample `i` occupies the
/// contiguous CHW slice [`BatchTensor::sample`] returns, so per-sample
/// arithmetic is identical to the batch-1 [`Tensor`] path.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTensor {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl BatchTensor {
    /// All-zero batch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> BatchTensor {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "batch tensor dims must be positive"
        );
        BatchTensor {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Stacks batch-1 tensors of identical shape into one batch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the shapes differ.
    #[must_use]
    pub fn from_samples(samples: &[Tensor]) -> BatchTensor {
        assert!(!samples.is_empty(), "batch needs at least one sample");
        let (c, h, w) = samples[0].shape();
        let mut data = Vec::with_capacity(samples.len() * c * h * w);
        for sample in samples {
            assert_eq!(sample.shape(), (c, h, w), "batch sample shape mismatch");
            data.extend_from_slice(sample.as_slice());
        }
        BatchTensor {
            n: samples.len(),
            c,
            h,
            w,
            data,
        }
    }

    /// `(batch, channels, height, width)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Elements per sample (`c·h·w`).
    #[must_use]
    pub fn sample_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Sample `i` as a flat CHW slice.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        assert!(i < self.n, "batch index out of bounds");
        let len = self.sample_len();
        &self.data[i * len..(i + 1) * len]
    }

    /// Mutable flat CHW view of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn sample_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.n, "batch index out of bounds");
        let len = self.sample_len();
        &mut self.data[i * len..(i + 1) * len]
    }

    /// The whole batch as one flat NCHW slice (sample-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat NCHW view of the whole batch (sample-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element-wise sum with another batch of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &BatchTensor) -> BatchTensor {
        assert_eq!(self.shape(), other.shape(), "batch tensor shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        BatchTensor {
            n: self.n,
            c: self.c,
            h: self.h,
            w: self.w,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_indexing() {
        let mut t = Tensor::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        t.set(1, 2, 3, 5.0);
        assert_eq!(t.get(1, 2, 3), 5.0);
        assert_eq!(t.as_slice()[23], 5.0);
    }

    #[test]
    fn add_is_elementwise() {
        let a = Tensor::from_data(1, 1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_data(1, 1, 2, vec![10.0, 20.0]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_data_length_rejected() {
        let _ = Tensor::from_data(1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn mean_of_known_values() {
        let t = Tensor::from_data(1, 2, 2, vec![1.0, 2.0, 3.0, 6.0]);
        assert!((t.mean() - 3.0).abs() < 1e-6);
    }
}
