//! Learnable parameter buffers.

use crate::AdamState;
use rand::Rng;

/// A learnable buffer: values, accumulated gradients, and Adam state.
#[derive(Debug, Clone)]
pub struct Param {
    value: Vec<f32>,
    grad: Vec<f32>,
    adam: AdamState,
}

impl Param {
    /// Zero-initialized parameter of `len` elements.
    #[must_use]
    pub fn zeros(len: usize) -> Param {
        Param {
            value: vec![0.0; len],
            grad: vec![0.0; len],
            adam: AdamState::new(len),
        }
    }

    /// Kaiming-style uniform initialization with the given fan-in.
    #[must_use]
    pub fn kaiming(len: usize, fan_in: usize, rng: &mut impl Rng) -> Param {
        let bound = (1.0 / fan_in.max(1) as f32).sqrt();
        Param {
            value: (0..len).map(|_| rng.gen_range(-bound..bound)).collect(),
            grad: vec![0.0; len],
            adam: AdamState::new(len),
        }
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Parameter values.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.value
    }

    /// Mutable values (for tests / manual initialization).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.value
    }

    /// Accumulated gradients.
    #[must_use]
    pub fn grads(&self) -> &[f32] {
        &self.grad
    }

    /// Mutable gradient buffer (backward passes accumulate here).
    pub fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grad
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// One Adam update with learning rate `lr`, then clears gradients.
    pub fn step(&mut self, lr: f32) {
        self.adam.step(&mut self.value, &self.grad, lr);
        self.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kaiming_bounds_follow_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Param::kaiming(1000, 100, &mut rng);
        let bound = (1.0f32 / 100.0).sqrt();
        assert!(p.values().iter().all(|v| v.abs() <= bound));
        assert!(p.values().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut p = Param::zeros(1);
        p.grads_mut()[0] = 1.0;
        p.step(0.1);
        assert!(
            p.values()[0] < 0.0,
            "value should decrease: {}",
            p.values()[0]
        );
        assert_eq!(p.grads()[0], 0.0, "grad cleared after step");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(3);
        p.grads_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.grads(), &[0.0, 0.0, 0.0]);
    }
}
