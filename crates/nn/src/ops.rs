//! Differentiable operations: each forward caches what backward needs.

use crate::{BatchTensor, Param, Tensor};
use rand::Rng;

/// 3×3 convolution with padding 1 (shape-preserving).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    weight: Param, // [out][in][3][3]
    bias: Param,   // [out]
    cache_x: Option<Tensor>,
}

impl Conv2d {
    /// New randomly initialized convolution.
    #[must_use]
    pub fn new(in_ch: usize, out_ch: usize, rng: &mut impl Rng) -> Conv2d {
        Conv2d {
            in_ch,
            out_ch,
            weight: Param::kaiming(out_ch * in_ch * 9, in_ch * 9, rng),
            bias: Param::zeros(out_ch),
            cache_x: None,
        }
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// One sample's convolution arithmetic over flat CHW slices — the
    /// body shared by [`Conv2d::forward`] and [`Conv2d::forward_batch`],
    /// so fused and serial execution are byte-identical per sample.
    fn forward_slice(&self, x: &[f32], h: usize, w: usize, out: &mut [f32]) {
        let wt = self.weight.values();
        let bias = self.bias.values();
        for (oc, &oc_bias) in bias.iter().enumerate() {
            for y in 0..h {
                for xx in 0..w {
                    let mut acc = oc_bias;
                    for ic in 0..self.in_ch {
                        let wbase = ((oc * self.in_ch) + ic) * 9;
                        for ky in 0..3usize {
                            let sy = y as isize + ky as isize - 1;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let sx = xx as isize + kx as isize - 1;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                acc += wt[wbase + ky * 3 + kx]
                                    * x[(ic * h + sy as usize) * w + sx as usize];
                            }
                        }
                    }
                    out[(oc * h + y) * w + xx] = acc;
                }
            }
        }
    }

    /// Forward pass; caches the input for backward.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count differs from construction.
    #[must_use]
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.channels(), self.in_ch, "conv input channels mismatch");
        let (h, w) = (x.height(), x.width());
        let mut out = Tensor::zeros(self.out_ch, h, w);
        self.forward_slice(x.as_slice(), h, w, out.as_mut_slice());
        self.cache_x = Some(x.clone());
        out
    }

    /// Inference-only batched forward: N samples through one call,
    /// writing into a single output allocation. No caching — the batch
    /// path never trains.
    ///
    /// Batch-inner loops: a tap's weight value, boundary check and flat
    /// offsets depend only on the output position, so they are computed
    /// once and applied to every sample — the index arithmetic and
    /// branches that dominate the scalar kernel amortize over the
    /// batch. Each sample still accumulates bias-then-taps in exactly
    /// the `(ic, ky, kx)` order of [`Conv2d::forward`], so per-sample
    /// outputs are byte-identical to N serial forwards.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count differs from construction.
    #[must_use]
    pub fn forward_batch(&self, x: &BatchTensor) -> BatchTensor {
        assert_eq!(x.channels(), self.in_ch, "conv input channels mismatch");
        let (n, _, h, w) = x.shape();
        let mut out = BatchTensor::zeros(n, self.out_ch, h, w);
        if n == 1 {
            self.forward_slice(x.sample(0), h, w, out.sample_mut(0));
            return out;
        }
        let wt = self.weight.values();
        let bias = self.bias.values();
        let in_len = x.sample_len();
        let out_len = out.sample_len();
        let xb = x.as_slice();
        let ob = out.as_mut_slice();
        let mut accs = vec![0.0f32; n];
        for (oc, &oc_bias) in bias.iter().enumerate() {
            for y in 0..h {
                for xx in 0..w {
                    accs.fill(oc_bias);
                    for ic in 0..self.in_ch {
                        let wbase = ((oc * self.in_ch) + ic) * 9;
                        for ky in 0..3usize {
                            let sy = y as isize + ky as isize - 1;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let sx = xx as isize + kx as isize - 1;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                let wv = wt[wbase + ky * 3 + kx];
                                let off = (ic * h + sy as usize) * w + sx as usize;
                                for (i, acc) in accs.iter_mut().enumerate() {
                                    *acc += wv * xb[i * in_len + off];
                                }
                            }
                        }
                    }
                    let pix = (oc * h + y) * w + xx;
                    for (i, &acc) in accs.iter().enumerate() {
                        ob[i * out_len + pix] = acc;
                    }
                }
            }
        }
        out
    }

    /// Backward pass: accumulates weight/bias grads, returns input grad.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    #[must_use]
    pub fn backward(&mut self, gout: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward before forward");
        let (h, w) = (x.height(), x.width());
        let mut gx = Tensor::zeros(self.in_ch, h, w);
        {
            let gw = self.weight.grads_mut();
            for oc in 0..self.out_ch {
                for y in 0..h {
                    for xx in 0..w {
                        let go = gout.get(oc, y, xx);
                        if go == 0.0 {
                            continue;
                        }
                        for ic in 0..self.in_ch {
                            let wbase = ((oc * self.in_ch) + ic) * 9;
                            for ky in 0..3usize {
                                let sy = y as isize + ky as isize - 1;
                                if sy < 0 || sy >= h as isize {
                                    continue;
                                }
                                for kx in 0..3usize {
                                    let sx = xx as isize + kx as isize - 1;
                                    if sx < 0 || sx >= w as isize {
                                        continue;
                                    }
                                    gw[wbase + ky * 3 + kx] +=
                                        go * x.get(ic, sy as usize, sx as usize);
                                }
                            }
                        }
                    }
                }
            }
        }
        {
            let gb = self.bias.grads_mut();
            for (oc, gb_oc) in gb.iter_mut().enumerate() {
                let mut acc = 0.0;
                for y in 0..h {
                    for xx in 0..w {
                        acc += gout.get(oc, y, xx);
                    }
                }
                *gb_oc += acc;
            }
        }
        let wt = self.weight.values();
        for oc in 0..self.out_ch {
            for y in 0..h {
                for xx in 0..w {
                    let go = gout.get(oc, y, xx);
                    if go == 0.0 {
                        continue;
                    }
                    for ic in 0..self.in_ch {
                        let wbase = ((oc * self.in_ch) + ic) * 9;
                        for ky in 0..3usize {
                            let sy = y as isize + ky as isize - 1;
                            if sy < 0 || sy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let sx = xx as isize + kx as isize - 1;
                                if sx < 0 || sx >= w as isize {
                                    continue;
                                }
                                let prev = gx.get(ic, sy as usize, sx as usize);
                                gx.set(
                                    ic,
                                    sy as usize,
                                    sx as usize,
                                    prev + go * wt[wbase + ky * 3 + kx],
                                );
                            }
                        }
                    }
                }
            }
        }
        out_of_place_cache_restore(&mut self.cache_x, x);
        gx
    }

    /// Adam step on both parameter buffers.
    pub fn step(&mut self, lr: f32) {
        self.weight.step(lr);
        self.bias.step(lr);
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Reads one bias value (diagnostics / gradient checking).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn bias_value(&self, i: usize) -> f32 {
        self.bias.values()[i]
    }

    /// Overwrites one bias value (diagnostics / gradient checking).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set_bias_value(&mut self, i: usize, v: f32) {
        self.bias.values_mut()[i] = v;
    }

    /// Reads one accumulated bias gradient.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn bias_grad(&self, i: usize) -> f32 {
        self.bias.grads()[i]
    }
}

// Backward consumed the cache via take(); restore it so repeated
// backward-after-forward sequences (e.g. gradient checking) behave.
fn out_of_place_cache_restore(cache: &mut Option<Tensor>, x: Tensor) {
    *cache = Some(x);
}

/// Fully-connected layer over flat vectors.
#[derive(Debug, Clone)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    weight: Param, // [out][in]
    bias: Param,
    cache_x: Option<Vec<f32>>,
}

impl Linear {
    /// New randomly initialized layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Linear {
        Linear {
            in_dim,
            out_dim,
            weight: Param::kaiming(out_dim * in_dim, in_dim, rng),
            bias: Param::zeros(out_dim),
            cache_x: None,
        }
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass; caches the input.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatch.
    #[must_use]
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let out = self.forward_infer(x);
        self.cache_x = Some(x.to_vec());
        out
    }

    /// Inference-only forward: same arithmetic as [`Linear::forward`]
    /// without caching the input, so the batched inference path can run
    /// against a shared `&self`.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatch.
    #[must_use]
    pub fn forward_infer(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "linear input dim mismatch");
        let wt = self.weight.values();
        let bias = self.bias.values();
        (0..self.out_dim)
            .map(|o| {
                let row = &wt[o * self.in_dim..(o + 1) * self.in_dim];
                bias[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f32>()
            })
            .collect()
    }

    /// Backward pass: accumulates grads, returns input grad.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    #[must_use]
    pub fn backward(&mut self, gout: &[f32]) -> Vec<f32> {
        let x = self.cache_x.clone().expect("backward before forward");
        {
            let gw = self.weight.grads_mut();
            for o in 0..self.out_dim {
                for i in 0..self.in_dim {
                    gw[o * self.in_dim + i] += gout[o] * x[i];
                }
            }
        }
        {
            let gb = self.bias.grads_mut();
            for o in 0..self.out_dim {
                gb[o] += gout[o];
            }
        }
        let wt = self.weight.values();
        (0..self.in_dim)
            .map(|i| {
                (0..self.out_dim)
                    .map(|o| gout[o] * wt[o * self.in_dim + i])
                    .sum()
            })
            .collect()
    }

    /// Adam step on both parameter buffers.
    pub fn step(&mut self, lr: f32) {
        self.weight.step(lr);
        self.bias.step(lr);
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// SiLU activation `x·σ(x)`, returning output and a backward closure
/// input (the cached input values).
#[must_use]
pub fn silu(x: &Tensor) -> Tensor {
    let data = x.as_slice().iter().map(|&v| v * sigmoid(v)).collect();
    let (c, h, w) = x.shape();
    Tensor::from_data(c, h, w, data)
}

/// Batched SiLU: element-wise, so one pass over the whole batch buffer
/// is byte-identical to per-sample [`silu`].
#[must_use]
pub fn silu_batch(x: &BatchTensor) -> BatchTensor {
    let (n, c, h, w) = x.shape();
    let mut out = BatchTensor::zeros(n, c, h, w);
    for i in 0..n {
        for (o, &v) in out.sample_mut(i).iter_mut().zip(x.sample(i)) {
            *o = v * sigmoid(v);
        }
    }
    out
}

/// Gradient of SiLU given the *input* values and upstream gradient.
#[must_use]
pub fn silu_backward(x: &Tensor, gout: &Tensor) -> Tensor {
    let data = x
        .as_slice()
        .iter()
        .zip(gout.as_slice())
        .map(|(&v, &g)| {
            let s = sigmoid(v);
            g * (s + v * s * (1.0 - s))
        })
        .collect();
    let (c, h, w) = x.shape();
    Tensor::from_data(c, h, w, data)
}

/// SiLU over a flat vector (for embeddings).
#[must_use]
pub fn silu_vec(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v * sigmoid(v)).collect()
}

/// Gradient of [`silu_vec`].
#[must_use]
pub fn silu_vec_backward(x: &[f32], gout: &[f32]) -> Vec<f32> {
    x.iter()
        .zip(gout)
        .map(|(&v, &g)| {
            let s = sigmoid(v);
            g * (s + v * s * (1.0 - s))
        })
        .collect()
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// One sample's 2× average pooling over flat CHW slices, shared by the
/// serial and batched entry points.
fn avg_pool2_slice(x: &[f32], c: usize, h: usize, w: usize, out: &mut [f32]) {
    let (oh, ow) = (h / 2, w / 2);
    for ch in 0..c {
        for y in 0..oh {
            for xx in 0..ow {
                let s = x[(ch * h + 2 * y) * w + 2 * xx]
                    + x[(ch * h + 2 * y) * w + 2 * xx + 1]
                    + x[(ch * h + 2 * y + 1) * w + 2 * xx]
                    + x[(ch * h + 2 * y + 1) * w + 2 * xx + 1];
                out[(ch * oh + y) * ow + xx] = s / 4.0;
            }
        }
    }
}

/// 2× average pooling (height/width must be even).
///
/// # Panics
///
/// Panics on odd spatial dimensions.
#[must_use]
pub fn avg_pool2(x: &Tensor) -> Tensor {
    let (c, h, w) = x.shape();
    assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 needs even dims");
    let mut out = Tensor::zeros(c, h / 2, w / 2);
    avg_pool2_slice(x.as_slice(), c, h, w, out.as_mut_slice());
    out
}

/// Batched [`avg_pool2`] writing into a single output allocation.
///
/// # Panics
///
/// Panics on odd spatial dimensions.
#[must_use]
pub fn avg_pool2_batch(x: &BatchTensor) -> BatchTensor {
    let (n, c, h, w) = x.shape();
    assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 needs even dims");
    let mut out = BatchTensor::zeros(n, c, h / 2, w / 2);
    for i in 0..n {
        avg_pool2_slice(x.sample(i), c, h, w, out.sample_mut(i));
    }
    out
}

/// Backward of [`avg_pool2`]: spreads gradients evenly over each window.
#[must_use]
pub fn avg_pool2_backward(gout: &Tensor) -> Tensor {
    let (c, h, w) = gout.shape();
    let mut gx = Tensor::zeros(c, h * 2, w * 2);
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..w {
                let g = gout.get(ch, y, xx) / 4.0;
                gx.set(ch, 2 * y, 2 * xx, g);
                gx.set(ch, 2 * y, 2 * xx + 1, g);
                gx.set(ch, 2 * y + 1, 2 * xx, g);
                gx.set(ch, 2 * y + 1, 2 * xx + 1, g);
            }
        }
    }
    gx
}

/// One sample's 2× nearest-neighbour upsampling over flat CHW slices,
/// shared by the serial and batched entry points.
fn upsample2_slice(x: &[f32], c: usize, h: usize, w: usize, out: &mut [f32]) {
    let (oh, ow) = (h * 2, w * 2);
    for ch in 0..c {
        for y in 0..oh {
            for xx in 0..ow {
                out[(ch * oh + y) * ow + xx] = x[(ch * h + y / 2) * w + xx / 2];
            }
        }
    }
}

/// 2× nearest-neighbour upsampling.
#[must_use]
pub fn upsample2(x: &Tensor) -> Tensor {
    let (c, h, w) = x.shape();
    let mut out = Tensor::zeros(c, h * 2, w * 2);
    upsample2_slice(x.as_slice(), c, h, w, out.as_mut_slice());
    out
}

/// Batched [`upsample2`] writing into a single output allocation.
#[must_use]
pub fn upsample2_batch(x: &BatchTensor) -> BatchTensor {
    let (n, c, h, w) = x.shape();
    let mut out = BatchTensor::zeros(n, c, h * 2, w * 2);
    for i in 0..n {
        upsample2_slice(x.sample(i), c, h, w, out.sample_mut(i));
    }
    out
}

/// Backward of [`upsample2`]: sums gradients of the four copies.
///
/// # Panics
///
/// Panics on odd spatial dimensions.
#[must_use]
pub fn upsample2_backward(gout: &Tensor) -> Tensor {
    let (c, h, w) = gout.shape();
    assert!(
        h % 2 == 0 && w % 2 == 0,
        "upsample2 backward needs even dims"
    );
    let mut gx = Tensor::zeros(c, h / 2, w / 2);
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..w {
                let prev = gx.get(ch, y / 2, xx / 2);
                gx.set(ch, y / 2, xx / 2, prev + gout.get(ch, y, xx));
            }
        }
    }
    gx
}

/// Concatenates two tensors along the channel axis.
///
/// # Panics
///
/// Panics on spatial shape mismatch.
#[must_use]
pub fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        (a.height(), a.width()),
        (b.height(), b.width()),
        "concat spatial shape mismatch"
    );
    let mut data = Vec::with_capacity(a.len() + b.len());
    data.extend_from_slice(a.as_slice());
    data.extend_from_slice(b.as_slice());
    Tensor::from_data(a.channels() + b.channels(), a.height(), a.width(), data)
}

/// Batched [`concat_channels`]: per sample, `a`'s channels followed by
/// `b`'s channels, matching the batch-1 layout exactly.
///
/// # Panics
///
/// Panics when batch size or spatial shape differ.
#[must_use]
pub fn concat_channels_batch(a: &BatchTensor, b: &BatchTensor) -> BatchTensor {
    assert_eq!(
        (a.batch(), a.height(), a.width()),
        (b.batch(), b.height(), b.width()),
        "batch concat shape mismatch"
    );
    let (n, h, w) = (a.batch(), a.height(), a.width());
    let mut out = BatchTensor::zeros(n, a.channels() + b.channels(), h, w);
    for i in 0..n {
        let split = a.sample_len();
        let dst = out.sample_mut(i);
        dst[..split].copy_from_slice(a.sample(i));
        dst[split..].copy_from_slice(b.sample(i));
    }
    out
}

/// Splits a concat gradient back into the two inputs' gradients.
#[must_use]
pub fn concat_channels_backward(gout: &Tensor, a_channels: usize) -> (Tensor, Tensor) {
    let (c, h, w) = gout.shape();
    let split = a_channels * h * w;
    let ga = Tensor::from_data(a_channels, h, w, gout.as_slice()[..split].to_vec());
    let gb = Tensor::from_data(c - a_channels, h, w, gout.as_slice()[split..].to_vec());
    (ga, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn conv_identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, &mut rng());
        // Hand-set a centre-tap identity kernel.
        conv.weight
            .values_mut()
            .copy_from_slice(&[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        conv.bias.values_mut()[0] = 0.0;
        let x = Tensor::from_data(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_gradient_check_single_weight() {
        // Numerical vs analytic gradient for one weight.
        let mut conv = Conv2d::new(1, 1, &mut rng());
        let x = Tensor::from_data(1, 3, 3, (0..9).map(|i| i as f32 * 0.1).collect());
        // Loss = sum(out); dL/dout = ones.
        let eps = 1e-3;
        let wi = 4; // centre weight
        let base = conv.weight.values()[wi];
        conv.weight.values_mut()[wi] = base + eps;
        let up: f32 = conv.forward(&x).as_slice().iter().sum();
        conv.weight.values_mut()[wi] = base - eps;
        let down: f32 = conv.forward(&x).as_slice().iter().sum();
        conv.weight.values_mut()[wi] = base;
        let numeric = (up - down) / (2.0 * eps);
        let _ = conv.forward(&x);
        let gout = Tensor::from_data(1, 3, 3, vec![1.0; 9]);
        let _ = conv.backward(&gout);
        let analytic = conv.weight.grads()[wi];
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn conv_input_gradient_check() {
        let mut conv = Conv2d::new(1, 2, &mut rng());
        let x = Tensor::from_data(1, 4, 4, (0..16).map(|i| (i as f32).sin()).collect());
        let eps = 1e-3;
        let idx = 5usize;
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let up: f32 = conv.forward(&xp).as_slice().iter().sum();
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let down: f32 = conv.forward(&xm).as_slice().iter().sum();
        let numeric = (up - down) / (2.0 * eps);
        let _ = conv.forward(&x);
        let gout = Tensor::from_data(2, 4, 4, vec![1.0; 32]);
        let gx = conv.backward(&gout);
        let analytic = gx.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn linear_gradient_check() {
        let mut lin = Linear::new(3, 2, &mut rng());
        let x = vec![0.3, -0.7, 0.2];
        let eps = 1e-3;
        let base = lin.weight.values()[1];
        lin.weight.values_mut()[1] = base + eps;
        let up: f32 = lin.forward(&x).iter().sum();
        lin.weight.values_mut()[1] = base - eps;
        let down: f32 = lin.forward(&x).iter().sum();
        lin.weight.values_mut()[1] = base;
        let numeric = (up - down) / (2.0 * eps);
        let _ = lin.forward(&x);
        let _ = lin.backward(&[1.0, 1.0]);
        let analytic = lin.weight.grads()[1];
        assert!((numeric - analytic).abs() < 1e-2);
    }

    #[test]
    fn silu_matches_reference_values() {
        let x = Tensor::from_data(1, 1, 3, vec![-1.0, 0.0, 1.0]);
        let y = silu(&x);
        assert!((y.as_slice()[0] + 0.26894).abs() < 1e-4);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!((y.as_slice()[2] - 0.73106).abs() < 1e-4);
    }

    #[test]
    fn silu_gradient_check() {
        let x = Tensor::from_data(1, 1, 2, vec![0.37, -1.2]);
        let eps = 1e-3;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric: f32 = (silu(&xp).as_slice()[i] - silu(&xm).as_slice()[i]) / (2.0 * eps);
            let gout = Tensor::from_data(1, 1, 2, vec![1.0, 1.0]);
            let analytic = silu_backward(&x, &gout).as_slice()[i];
            assert!((numeric - analytic).abs() < 1e-3);
        }
    }

    #[test]
    fn pool_and_upsample_round_trip_shapes() {
        let x = Tensor::zeros(3, 8, 8);
        assert_eq!(avg_pool2(&x).shape(), (3, 4, 4));
        assert_eq!(upsample2(&avg_pool2(&x)).shape(), (3, 8, 8));
    }

    #[test]
    fn pool_backward_conserves_gradient_mass() {
        let gout = Tensor::from_data(1, 1, 1, vec![4.0]);
        let gx = avg_pool2_backward(&gout);
        assert_eq!(gx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn upsample_backward_sums_copies() {
        let gout = Tensor::from_data(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let gx = upsample2_backward(&gout);
        assert_eq!(gx.as_slice(), &[10.0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Tensor::from_data(1, 1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_data(2, 1, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = concat_channels(&a, &b);
        assert_eq!(cat.shape(), (3, 1, 2));
        let (ga, gb) = concat_channels_backward(&cat, 1);
        assert_eq!(ga.as_slice(), a.as_slice());
        assert_eq!(gb.as_slice(), b.as_slice());
    }
}
