//! A small two-level U-Net with time + class conditioning.
//!
//! Architecture (channel count `C` configurable):
//!
//! ```text
//! x ─ conv_in ─ ResBlock ─┬─ pool ─ ResBlock ─ ResBlock ─ upsample ─┐
//!                         │ (skip) ──────────────────────── concat ─┴─ conv ─ ResBlock ─ conv_out ─ logits
//! ```
//!
//! The diffusion step `k` enters through a sinusoidal embedding; the
//! class condition is a learned embedding *added to the time embedding*,
//! exactly the conditioning scheme the paper describes ("the condition
//! embedding is added into the embedding of the time step").

use crate::ops::{
    avg_pool2, avg_pool2_backward, avg_pool2_batch, concat_channels, concat_channels_backward,
    concat_channels_batch, silu, silu_backward, silu_batch, silu_vec, silu_vec_backward, upsample2,
    upsample2_backward, upsample2_batch, Conv2d, Linear,
};
use crate::{BatchTensor, Param, Tensor};
use rand::Rng;

const EMB_DIM: usize = 16;

/// Residual block: `x + conv2(silu(conv1(x) + proj(emb)))`.
#[derive(Debug, Clone)]
struct ResBlock {
    conv1: Conv2d,
    conv2: Conv2d,
    emb_proj: Linear,
    cache_pre_act: Option<Tensor>,
}

impl ResBlock {
    fn new(channels: usize, rng: &mut impl Rng) -> ResBlock {
        ResBlock {
            conv1: Conv2d::new(channels, channels, rng),
            conv2: Conv2d::new(channels, channels, rng),
            emb_proj: Linear::new(EMB_DIM, channels, rng),
            cache_pre_act: None,
        }
    }

    fn forward(&mut self, x: &Tensor, emb: &[f32]) -> Tensor {
        let mut h = self.conv1.forward(x);
        let bias = self.emb_proj.forward(emb);
        let (c, hh, ww) = h.shape();
        for (ch, &ch_bias) in bias.iter().enumerate().take(c) {
            for y in 0..hh {
                for xx in 0..ww {
                    let v = h.get(ch, y, xx) + ch_bias;
                    h.set(ch, y, xx, v);
                }
            }
        }
        self.cache_pre_act = Some(h.clone());
        let activated = silu(&h);
        let out = self.conv2.forward(&activated);
        out.add(x)
    }

    /// Inference-only batched forward: every sample shares the embedding
    /// projection (computed once) and streams through one fused pass per
    /// layer. Per sample the arithmetic is identical to
    /// [`ResBlock::forward`]; no training caches are written.
    fn forward_batch(&self, x: &BatchTensor, emb: &[f32]) -> BatchTensor {
        let mut h = self.conv1.forward_batch(x);
        let bias = self.emb_proj.forward_infer(emb);
        let (n, c, hh, ww) = h.shape();
        let plane = hh * ww;
        for i in 0..n {
            let sample = h.sample_mut(i);
            for (ch, &ch_bias) in bias.iter().enumerate().take(c) {
                for v in &mut sample[ch * plane..(ch + 1) * plane] {
                    *v += ch_bias;
                }
            }
        }
        let activated = silu_batch(&h);
        let out = self.conv2.forward_batch(&activated);
        out.add(x)
    }

    /// Returns `(grad_x, grad_emb)`.
    fn backward(&mut self, gout: &Tensor) -> (Tensor, Vec<f32>) {
        let pre = self.cache_pre_act.take().expect("backward before forward");
        let g_h2 = self.conv2.backward(gout);
        let g_pre = silu_backward(&pre, &g_h2);
        // Per-channel bias gradient (broadcast sum).
        let (c, hh, ww) = g_pre.shape();
        let mut g_bias = vec![0.0f32; c];
        for (ch, g_bias_ch) in g_bias.iter_mut().enumerate().take(c) {
            for y in 0..hh {
                for xx in 0..ww {
                    *g_bias_ch += g_pre.get(ch, y, xx);
                }
            }
        }
        let g_emb = self.emb_proj.backward(&g_bias);
        let g_x_conv = self.conv1.backward(&g_pre);
        (g_x_conv.add(gout), g_emb)
    }

    fn step(&mut self, lr: f32) {
        self.conv1.step(lr);
        self.conv2.step(lr);
        self.emb_proj.step(lr);
    }

    fn parameter_count(&self) -> usize {
        self.conv1.parameter_count()
            + self.conv2.parameter_count()
            + self.emb_proj.parameter_count()
    }
}

/// The two-level conditional U-Net.
#[derive(Debug, Clone)]
pub struct UNet {
    channels: usize,
    n_classes: usize,
    conv_in: Conv2d,
    down1: ResBlock,
    down2: ResBlock,
    mid: ResBlock,
    up_conv: Conv2d,
    up_block: ResBlock,
    conv_out: Conv2d,
    time_lin1: Linear,
    time_lin2: Linear,
    cond_emb: Param,
    cache_skip: Option<Tensor>,
    cache_hidden: Option<Vec<f32>>,
    cache_cond: Option<usize>,
}

impl UNet {
    /// New network with `channels` feature maps and `n_classes` condition
    /// embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `n_classes` is 0.
    #[must_use]
    pub fn new(channels: usize, n_classes: usize, rng: &mut impl Rng) -> UNet {
        assert!(
            channels > 0 && n_classes > 0,
            "channels/classes must be positive"
        );
        UNet {
            channels,
            n_classes,
            conv_in: Conv2d::new(1, channels, rng),
            down1: ResBlock::new(channels, rng),
            down2: ResBlock::new(channels, rng),
            mid: ResBlock::new(channels, rng),
            up_conv: Conv2d::new(channels * 2, channels, rng),
            up_block: ResBlock::new(channels, rng),
            conv_out: Conv2d::new(channels, 1, rng),
            time_lin1: Linear::new(EMB_DIM, EMB_DIM * 2, rng),
            time_lin2: Linear::new(EMB_DIM * 2, EMB_DIM, rng),
            cond_emb: Param::kaiming(n_classes * EMB_DIM, EMB_DIM, rng),
            cache_skip: None,
            cache_hidden: None,
            cache_cond: None,
        }
    }

    /// Number of condition classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.conv_in.parameter_count()
            + self.down1.parameter_count()
            + self.down2.parameter_count()
            + self.mid.parameter_count()
            + self.up_conv.parameter_count()
            + self.up_block.parameter_count()
            + self.conv_out.parameter_count()
            + self.time_lin1.parameter_count()
            + self.time_lin2.parameter_count()
            + self.cond_emb.len()
    }

    /// Forward pass: `x` is a `1 × H × W` map (H, W even), `t_norm` the
    /// normalized diffusion step `k/K`, `cond` an optional class id.
    ///
    /// # Panics
    ///
    /// Panics on non-single-channel input, odd spatial dims, or a class
    /// id out of range.
    #[must_use]
    pub fn forward(&mut self, x: &Tensor, t_norm: f32, cond: Option<usize>) -> Tensor {
        assert_eq!(x.channels(), 1, "unet expects a single input channel");
        assert!(
            x.height().is_multiple_of(2) && x.width().is_multiple_of(2),
            "unet needs even spatial dims"
        );
        if let Some(c) = cond {
            assert!(c < self.n_classes, "class id {c} out of range");
        }
        // Time features + class embedding.
        let mut feat = sinusoidal_embedding(t_norm);
        if let Some(c) = cond {
            let row = &self.cond_emb.values()[c * EMB_DIM..(c + 1) * EMB_DIM];
            for (f, r) in feat.iter_mut().zip(row) {
                *f += r;
            }
        }
        self.cache_cond = cond;
        let hidden = self.time_lin1.forward(&feat);
        self.cache_hidden = Some(hidden.clone());
        let emb = self.time_lin2.forward(&silu_vec(&hidden));

        let h0 = self.conv_in.forward(x);
        let h1 = self.down1.forward(&h0, &emb);
        self.cache_skip = Some(h1.clone());
        let pooled = avg_pool2(&h1);
        let h2 = self.down2.forward(&pooled, &emb);
        let m = self.mid.forward(&h2, &emb);
        let u = upsample2(&m);
        let cat = concat_channels(&u, &h1);
        let uc = self.up_conv.forward(&cat);
        let h3 = self.up_block.forward(&uc, &emb);
        self.conv_out.forward(&h3)
    }

    /// Inference-only batched forward: N single-channel maps (all the
    /// same even `H × W`) at one `(t_norm, cond)` through one fused
    /// pass per layer.
    ///
    /// The time/condition embedding is a function of `(t_norm, cond)`
    /// alone, so it is computed **once** and shared by every sample;
    /// each layer then runs the batch through a single output
    /// allocation. Per sample the arithmetic is identical to
    /// [`UNet::forward`], so output `i` is byte-identical to the batch-1
    /// forward of sample `i`. No training caches are written — this
    /// path cannot be followed by [`UNet::backward`].
    ///
    /// # Panics
    ///
    /// Panics on non-single-channel input, odd spatial dims, or a class
    /// id out of range.
    #[must_use]
    pub fn forward_batch(&self, x: &BatchTensor, t_norm: f32, cond: Option<usize>) -> BatchTensor {
        assert_eq!(x.channels(), 1, "unet expects a single input channel");
        assert!(
            x.height().is_multiple_of(2) && x.width().is_multiple_of(2),
            "unet needs even spatial dims"
        );
        if let Some(c) = cond {
            assert!(c < self.n_classes, "class id {c} out of range");
        }
        // Time features + class embedding — shared by the whole batch.
        let mut feat = sinusoidal_embedding(t_norm);
        if let Some(c) = cond {
            let row = &self.cond_emb.values()[c * EMB_DIM..(c + 1) * EMB_DIM];
            for (f, r) in feat.iter_mut().zip(row) {
                *f += r;
            }
        }
        let hidden = self.time_lin1.forward_infer(&feat);
        let emb = self.time_lin2.forward_infer(&silu_vec(&hidden));

        let h0 = self.conv_in.forward_batch(x);
        let h1 = self.down1.forward_batch(&h0, &emb);
        let pooled = avg_pool2_batch(&h1);
        let h2 = self.down2.forward_batch(&pooled, &emb);
        let m = self.mid.forward_batch(&h2, &emb);
        let u = upsample2_batch(&m);
        let cat = concat_channels_batch(&u, &h1);
        let uc = self.up_conv.forward_batch(&cat);
        let h3 = self.up_block.forward_batch(&uc, &emb);
        self.conv_out.forward_batch(&h3)
    }

    /// Backward pass from the logit gradient; accumulates all parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, g_logits: &Tensor) {
        let g_h3 = self.conv_out.backward(g_logits);
        let (g_uc, ge1) = self.up_block.backward(&g_h3);
        let g_cat = self.up_conv.backward(&g_uc);
        let (g_u, g_skip_a) = concat_channels_backward(&g_cat, self.channels);
        let g_m = upsample2_backward(&g_u);
        let (g_h2, ge2) = self.mid.backward(&g_m);
        let (g_pooled, ge3) = self.down2.backward(&g_h2);
        let g_skip_b = avg_pool2_backward(&g_pooled);
        let g_h1 = g_skip_a.add(&g_skip_b);
        let (g_h0, ge4) = self.down1.backward(&g_h1);
        let _gx = self.conv_in.backward(&g_h0);
        let _ = self.cache_skip.take();

        // Embedding gradient: sum over the four consumers.
        let mut g_emb = ge1;
        for extra in [ge2, ge3, ge4] {
            for (a, b) in g_emb.iter_mut().zip(&extra) {
                *a += b;
            }
        }
        let g_hidden_act = self.time_lin2.backward(&g_emb);
        let hidden = self.cache_hidden.take().expect("backward before forward");
        let g_hidden = silu_vec_backward(&hidden, &g_hidden_act);
        let g_feat = self.time_lin1.backward(&g_hidden);
        if let Some(c) = self.cache_cond.take() {
            let grads = self.cond_emb.grads_mut();
            for (i, g) in g_feat.iter().enumerate() {
                grads[c * EMB_DIM + i] += g;
            }
        }
    }

    /// One Adam step over every parameter buffer (clears gradients).
    pub fn step(&mut self, lr: f32) {
        self.conv_in.step(lr);
        self.down1.step(lr);
        self.down2.step(lr);
        self.mid.step(lr);
        self.up_conv.step(lr);
        self.up_block.step(lr);
        self.conv_out.step(lr);
        self.time_lin1.step(lr);
        self.time_lin2.step(lr);
        self.cond_emb.step(lr);
    }
}

/// Sinusoidal position features of the normalized step.
fn sinusoidal_embedding(t_norm: f32) -> Vec<f32> {
    let position = t_norm * 1000.0;
    (0..EMB_DIM)
        .map(|i| {
            let pair = (i / 2) as f32;
            let freq = 10000f32.powf(-2.0 * pair / EMB_DIM as f32);
            if i % 2 == 0 {
                (position * freq).sin()
            } else {
                (position * freq).cos()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn forward_shape_is_preserved() {
        let mut net = UNet::new(4, 2, &mut rng());
        let x = Tensor::zeros(1, 8, 8);
        let y = net.forward(&x, 0.3, Some(1));
        assert_eq!(y.shape(), (1, 8, 8));
    }

    #[test]
    fn parameter_count_is_substantial() {
        let net = UNet::new(8, 2, &mut rng());
        assert!(net.parameter_count() > 5000, "{}", net.parameter_count());
    }

    #[test]
    fn different_conditions_change_output() {
        let mut net = UNet::new(4, 2, &mut rng());
        let x = Tensor::from_data(1, 8, 8, (0..64).map(|i| (i as f32).cos()).collect());
        let y0 = net.forward(&x, 0.5, Some(0));
        let y1 = net.forward(&x, 0.5, Some(1));
        assert_ne!(y0.as_slice(), y1.as_slice());
    }

    #[test]
    fn different_times_change_output() {
        let mut net = UNet::new(4, 1, &mut rng());
        let x = Tensor::from_data(1, 8, 8, (0..64).map(|i| (i as f32).sin()).collect());
        let y0 = net.forward(&x, 0.1, None);
        let y1 = net.forward(&x, 0.9, None);
        assert_ne!(y0.as_slice(), y1.as_slice());
    }

    #[test]
    fn training_reduces_bce_on_fixed_target() {
        // Teach the net to output a vertical-stripe pattern regardless of
        // input: loss should drop substantially within a few steps.
        let mut net = UNet::new(6, 1, &mut rng());
        let target: Vec<f32> = (0..256)
            .map(|i| f32::from(u8::from((i % 16) < 8)))
            .collect();
        let mut r = rng();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..40 {
            let x = Tensor::from_data(
                1,
                16,
                16,
                (0..256)
                    .map(|_| f32::from(u8::from(rand::Rng::gen::<bool>(&mut r))))
                    .collect(),
            );
            let logits = net.forward(&x, 0.5, None);
            // BCE loss + gradient.
            let mut g = Tensor::zeros(1, 16, 16);
            let mut loss = 0.0f32;
            for (i, &t) in target.iter().enumerate() {
                let l = logits.as_slice()[i];
                let p = 1.0 / (1.0 + (-l).exp());
                loss -= t * p.max(1e-6).ln() + (1.0 - t) * (1.0 - p).max(1e-6).ln();
                g.as_mut_slice()[i] = (p - t) / 256.0;
            }
            loss /= 256.0;
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
            net.backward(&g);
            net.step(3e-3);
        }
        let first = first_loss.expect("ran at least one step");
        assert!(
            last_loss < first * 0.6,
            "loss did not drop: {first} -> {last_loss}"
        );
    }

    #[test]
    fn gradient_check_through_whole_network() {
        // Numerical gradient of the input against analytic conv_in grad is
        // impractical (input grad not returned), so check a weight deep in
        // the network instead: conv_out bias.
        let mut net = UNet::new(3, 1, &mut rng());
        let x = Tensor::from_data(1, 4, 4, (0..16).map(|i| (i as f32) * 0.05).collect());
        let eps = 1e-2;
        let loss_of = |net: &mut UNet, x: &Tensor| -> f32 {
            net.forward(x, 0.5, None).as_slice().iter().sum()
        };
        let base = net.conv_out.bias_value(0);
        net.conv_out.set_bias_value(0, base + eps);
        let up = loss_of(&mut net, &x);
        net.conv_out.set_bias_value(0, base - eps);
        let down = loss_of(&mut net, &x);
        net.conv_out.set_bias_value(0, base);
        let numeric = (up - down) / (2.0 * eps);
        let _ = net.forward(&x, 0.5, None);
        net.backward(&Tensor::from_data(1, 4, 4, vec![1.0; 16]));
        let analytic = net.conv_out.bias_grad(0);
        assert!(
            (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn forward_batch_is_byte_identical_to_serial_forward() {
        let mut net = UNet::new(4, 2, &mut rng());
        let mut r = rng();
        for batch in 1..=4usize {
            let samples: Vec<Tensor> = (0..batch)
                .map(|_| {
                    Tensor::from_data(
                        1,
                        8,
                        8,
                        (0..64)
                            .map(|_| rand::Rng::gen_range(&mut r, -1.0f32..1.0))
                            .collect(),
                    )
                })
                .collect();
            let fused = net.forward_batch(&BatchTensor::from_samples(&samples), 0.4, Some(1));
            assert_eq!(fused.shape(), (batch, 1, 8, 8));
            for (i, sample) in samples.iter().enumerate() {
                let serial = net.forward(sample, 0.4, Some(1));
                assert_eq!(
                    fused.sample(i),
                    serial.as_slice(),
                    "batch {batch} sample {i} diverged"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_out_of_range_panics() {
        let mut net = UNet::new(2, 1, &mut rng());
        let x = Tensor::zeros(1, 4, 4);
        let _ = net.forward(&x, 0.5, Some(5));
    }
}
