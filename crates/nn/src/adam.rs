//! Adam optimizer state (Kingma & Ba), per parameter buffer.

/// First/second-moment accumulators and step counter for one buffer.
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
}

impl AdamState {
    /// Fresh state for a buffer of `len` scalars (β₁ = 0.9, β₂ = 0.999).
    #[must_use]
    pub fn new(len: usize) -> AdamState {
        AdamState {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Applies one Adam update of `values` from `grads` in place.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree.
    pub fn step(&mut self, values: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(values.len(), self.m.len(), "value/state length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad/state length mismatch");
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..values.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            values[i] -= lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = (x - 3)², ∇f = 2(x − 3).
        let mut state = AdamState::new(1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let grad = [2.0 * (x[0] - 3.0)];
            state.step(&mut x, &grad, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn first_step_magnitude_is_learning_rate() {
        // Adam's debiased first step is ≈ lr regardless of grad scale.
        let mut state = AdamState::new(1);
        let mut x = [0.0f32];
        state.step(&mut x, &[1e-3], 0.1);
        assert!((x[0] + 0.1).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let mut state = AdamState::new(2);
        let mut x = [0.0f32];
        state.step(&mut x, &[1.0], 0.1);
    }
}
