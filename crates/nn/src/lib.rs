//! Minimal CPU neural-network substrate for the diffusion denoiser.
//!
//! The paper trains a DDPM-style U-Net for one million iterations on
//! GPUs. This crate provides a small but *real* CPU implementation with
//! manual back-propagation: enough to train the same architecture family
//! end-to-end at reduced scale and to verify the full learning pipeline
//! (the large-scale experiments use the statistical MRF denoiser; see
//! DESIGN.md for the substitution rationale).
//!
//! Contents:
//!
//! * [`Tensor`] — CHW `f32` feature maps (batch size 1 by design);
//! * [`Param`] — a learnable buffer with gradient and Adam state;
//! * [`Conv2d`] (3×3, pad 1), [`Linear`], SiLU, 2× average-pool /
//!   nearest-upsample, channel concat — each with forward + backward;
//! * [`UNet`] — a two-level U-Net with residual blocks, sinusoidal time
//!   embedding and a learned class-condition embedding, exactly the
//!   conditioning scheme of the paper (condition embedding added to the
//!   time embedding).
//!
//! # Example
//!
//! ```
//! use cp_nn::{Tensor, UNet};
//! use rand::SeedableRng;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut net = UNet::new(8, 2, &mut rng); // 8 channels, 2 classes
//! let x = Tensor::zeros(1, 16, 16);
//! let logits = net.forward(&x, 0.5, Some(0));
//! assert_eq!(logits.shape(), (1, 16, 16));
//! ```

pub mod adam;
pub mod ops;
pub mod param;
pub mod tensor;
pub mod unet;

pub use adam::AdamState;
pub use ops::{
    avg_pool2, avg_pool2_batch, concat_channels, concat_channels_batch, silu, silu_batch,
    upsample2, upsample2_batch, Conv2d, Linear,
};
pub use param::Param;
pub use tensor::{BatchTensor, Tensor};
pub use unet::UNet;
