//! The readiness-driven NDJSON transport: one loop thread multiplexing
//! thousands of connections.
//!
//! The blocking [`NdjsonServer`](crate::NdjsonServer) spends a thread per
//! connection, so its ceiling is thread count (`--max-connections`,
//! default 64). Interactive dialog workloads are dominated by mostly-idle
//! connections — exactly where readiness polling wins. This module serves
//! the same [`ConnectionHandler`] contract, byte-identical on the wire,
//! with a different execution shape:
//!
//! * **accept / read / frame** happen on the single loop thread over
//!   non-blocking sockets ([`Poller`]: epoll on Linux, `poll(2)`
//!   fallback elsewhere);
//! * complete lines go to the handler exactly as in the thread server —
//!   for [`EngineHandler`](crate::EngineHandler) that is the engine's
//!   non-blocking `submit` path, so the loop never waits on inference;
//! * **replies** are pushed by completion threads into a per-connection
//!   [`OutboundQueue`] and the loop is poked through a [`WakePipe`]; the
//!   loop writes them out as sockets accept bytes. The loop never blocks
//!   on a slow client: past the configured high-water mark the client is
//!   disconnected (a *backpressure kill*, reported separately from clean
//!   closes in the engine's connection counters).

use crate::conn::{FlushOutcome, Framed, NonblockingConn, ReadOutcome};
use crate::conn::{DEFAULT_MAX_LINE_BYTES, DEFAULT_OUTBOUND_HIGH_WATER};
use crate::poller::{Interest, PollEvent, Poller, WakePipe};
use crate::server::ConnectionHandler;
use crate::sink::LineSink;
use chatpattern_core::wire::ResponseEnvelope;
use chatpattern_core::{ConnCounters, Error};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default connection cap for the event-loop transport — two orders of
/// magnitude above the thread transport's default, bounded by fd budget
/// and per-connection buffer memory rather than by threads.
pub const DEFAULT_EVENT_LOOP_CONNECTIONS: usize = 4096;

/// Tuning for [`EventLoopServer`].
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Accepts pause (connections queue in the OS backlog) at this many
    /// live connections.
    pub max_connections: usize,
    /// Longest accepted request line; longer lines are answered with an
    /// error envelope and discarded without unbounded buffering.
    pub max_line_bytes: usize,
    /// Per-connection outbound byte cap; a peer that falls further
    /// behind than this is disconnected (backpressure kill).
    pub outbound_high_water: usize,
    /// Use the portable `poll(2)` backend even where epoll is
    /// available — keeps the fallback path testable on Linux.
    pub force_poll_fallback: bool,
}

impl Default for EventLoopConfig {
    fn default() -> EventLoopConfig {
        EventLoopConfig {
            max_connections: DEFAULT_EVENT_LOOP_CONNECTIONS,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            outbound_high_water: DEFAULT_OUTBOUND_HIGH_WATER,
            force_poll_fallback: false,
        }
    }
}

/// Why a connection left the loop.
enum CloseReason {
    /// EOF, reset, or a write to a vanished peer.
    Clean,
    /// The outbound queue overflowed its high-water mark.
    Backpressure,
}

/// State shared between the loop thread, completion threads (via each
/// queue's notify hook), and the handle.
struct Shared {
    /// Tokens whose outbound queues need loop attention.
    dirty: Mutex<Vec<u64>>,
    wake: WakePipe,
    stop: AtomicBool,
}

/// A bound-but-not-yet-serving event-loop server; mirrors
/// [`NdjsonServer`](crate::NdjsonServer)'s bind → `local_addr` →
/// [`spawn`](EventLoopServer::spawn) shape so serve binaries can switch
/// transports behind one flag.
pub struct EventLoopServer {
    listener: TcpListener,
    addr: SocketAddr,
    config: EventLoopConfig,
    counters: Option<Arc<ConnCounters>>,
}

impl EventLoopServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: EventLoopConfig) -> io::Result<EventLoopServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(EventLoopServer {
            listener,
            addr,
            config,
            counters: None,
        })
    }

    /// The bound address (the real port, even when bound with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Attaches connection counters (live/peak/disconnect reasons) so
    /// the transport shows up in the engine's `Stats`.
    #[must_use]
    pub fn conn_counters(mut self, counters: Arc<ConnCounters>) -> EventLoopServer {
        self.counters = Some(counters);
        self
    }

    /// Starts the loop thread and returns the handle used to stop it.
    ///
    /// # Errors
    ///
    /// Poller or wake-pipe creation failure.
    pub fn spawn<H: ConnectionHandler>(self, handler: Arc<H>) -> io::Result<EventLoopHandle> {
        self.listener.set_nonblocking(true)?;
        let mut poller = if self.config.force_poll_fallback {
            Poller::poll_fallback()?
        } else {
            Poller::new()?
        };
        let shared = Arc::new(Shared {
            dirty: Mutex::new(Vec::new()),
            wake: WakePipe::new()?,
            stop: AtomicBool::new(false),
        });
        poller.register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(shared.wake.read_fd(), TOKEN_WAKE, Interest::READ)?;
        let addr = self.addr;
        let mut state = LoopState {
            poller,
            listener: self.listener,
            config: self.config,
            handler,
            counters: self.counters,
            shared: Arc::clone(&shared),
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            accept_paused: false,
        };
        let thread = std::thread::spawn(move || state.run());
        Ok(EventLoopHandle {
            addr,
            shared,
            thread: Some(thread),
        })
    }
}

/// A running event-loop server; same surface as
/// [`ServerHandle`](crate::ServerHandle).
pub struct EventLoopHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl EventLoopHandle {
    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop (outstanding connection queues are silenced so
    /// late completion writes become no-ops) and joins the loop thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Parks this thread on the loop forever (the serve binary's
    /// foreground mode).
    pub fn join(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

struct Slot {
    conn: NonblockingConn,
    sink: Arc<LineSink>,
}

struct LoopState<H: ConnectionHandler> {
    poller: Poller,
    listener: TcpListener,
    config: EventLoopConfig,
    handler: Arc<H>,
    counters: Option<Arc<ConnCounters>>,
    shared: Arc<Shared>,
    conns: HashMap<u64, Slot>,
    next_token: u64,
    accept_paused: bool,
}

impl<H: ConnectionHandler> LoopState<H> {
    fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            if self.poller.wait(&mut events, -1).is_err() {
                // Pathological poller failure: back off instead of
                // spinning; stop flag is still honoured below.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            let mut accept_ready = false;
            let mut wake_ready = false;
            let ready = std::mem::take(&mut events);
            for ev in &ready {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => wake_ready = true,
                    token => {
                        if ev.readable || ev.hangup {
                            self.conn_readable(token);
                        }
                        if ev.writable {
                            self.flush_token(token);
                        }
                    }
                }
            }
            events = ready;
            if wake_ready {
                self.shared.wake.drain();
            }
            // Drain the dirty list every pass: completion threads may
            // have queued replies whose wake byte raced this wait.
            let dirty = std::mem::take(&mut *self.shared.dirty.lock().expect("dirty lock"));
            for token in dirty {
                self.flush_token(token);
            }
            if accept_ready {
                self.accept_ready();
            }
            if self.accept_paused && self.conns.len() < self.config.max_connections {
                self.resume_accepts();
            }
        }
        // Teardown: the stop flag is checked before queued events are
        // processed, so replies completion threads enqueued just
        // before shutdown may still sit unflushed. Give every
        // non-killed queue one final write pass — bounded: each stops
        // at WouldBlock rather than waiting for a slow reader — then
        // silence the queues so in-flight completion threads drop
        // their replies instead of accumulating them forever.
        for slot in self.conns.values_mut() {
            if !slot.conn.outbound().is_killed() {
                let _ = slot.conn.flush_ready();
            }
            slot.conn.outbound().close();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if self.conns.len() >= self.config.max_connections {
                self.pause_accepts();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let token = self.next_token;
                    self.next_token += 1;
                    let shared = Arc::clone(&self.shared);
                    let notify = move || {
                        shared.dirty.lock().expect("dirty lock").push(token);
                        shared.wake.wake();
                    };
                    let Ok(conn) = NonblockingConn::new(
                        stream,
                        self.config.max_line_bytes,
                        self.config.outbound_high_water,
                        notify,
                    ) else {
                        continue;
                    };
                    let sink = Arc::new(LineSink::new(Box::new(conn.outbound().writer())));
                    if self
                        .poller
                        .register(conn.raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    if let Some(counters) = &self.counters {
                        counters.connected();
                    }
                    self.conns.insert(token, Slot { conn, sink });
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion): the
                    // level-triggered listener would refire immediately,
                    // so yield briefly instead of spinning.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    fn pause_accepts(&mut self) {
        if !self.accept_paused {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.accept_paused = true;
        }
    }

    fn resume_accepts(&mut self) {
        if self
            .poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_ok()
        {
            self.accept_paused = false;
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let mut products = Vec::new();
        let (outcome, sink) = {
            let Some(slot) = self.conns.get_mut(&token) else {
                return;
            };
            let mut scratch = [0u8; 16 * 1024];
            let outcome = slot.conn.read_ready(&mut scratch, &mut products);
            (outcome, Arc::clone(&slot.sink))
        };
        for product in products {
            match product {
                Framed::Line(line) => {
                    if !line.trim().is_empty() {
                        self.handler.on_line(&line, &sink);
                    }
                }
                Framed::Oversize { bytes } => {
                    let error = Error::config(format!(
                        "request line exceeds {} bytes ({bytes} bytes discarded)",
                        self.config.max_line_bytes
                    ));
                    sink.send_line(
                        &ResponseEnvelope::error(serde_json::Value::Null, &error).to_line(),
                    );
                }
            }
        }
        if sink.has_failed() {
            self.close(token, CloseReason::Clean);
            return;
        }
        match outcome {
            ReadOutcome::Closed => self.close(token, CloseReason::Clean),
            // Opportunistic flush: synchronous replies (decode errors,
            // typed back-pressure) go out this pass instead of waiting
            // for the wake pipe.
            ReadOutcome::Open => self.flush_token(token),
        }
    }

    fn flush_token(&mut self, token: u64) {
        let (fd, outcome, interest) = {
            let Some(slot) = self.conns.get_mut(&token) else {
                return;
            };
            (
                slot.conn.raw_fd(),
                slot.conn.flush_ready(),
                slot.conn.interest,
            )
        };
        match outcome {
            FlushOutcome::Idle => {
                if interest.writable && self.poller.modify(fd, token, Interest::READ).is_ok() {
                    if let Some(slot) = self.conns.get_mut(&token) {
                        slot.conn.interest = Interest::READ;
                    }
                }
            }
            FlushOutcome::Pending => {
                if !interest.writable && self.poller.modify(fd, token, Interest::READ_WRITE).is_ok()
                {
                    if let Some(slot) = self.conns.get_mut(&token) {
                        slot.conn.interest = Interest::READ_WRITE;
                    }
                }
            }
            FlushOutcome::Killed => self.close(token, CloseReason::Backpressure),
            FlushOutcome::Closed => self.close(token, CloseReason::Clean),
        }
    }

    fn close(&mut self, token: u64, reason: CloseReason) {
        let Some(slot) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(slot.conn.raw_fd());
        slot.conn.outbound().close();
        // Count before the handler callback: a stats line flushed from
        // `on_disconnect` must already see this disconnect.
        if let Some(counters) = &self.counters {
            match reason {
                CloseReason::Clean => counters.disconnected_clean(),
                CloseReason::Backpressure => counters.disconnected_backpressure(),
            }
        }
        self.handler.on_disconnect(&slot.sink);
        // Dropping the slot closes the socket fd.
    }
}
