//! The blocking NDJSON client: timeouts, reconnect-with-backoff, and
//! a split mode for callers that pump sends and receives on separate
//! threads (the router does).

use chatpattern_core::wire::{RequestEnvelope, ResponseEnvelope};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection policy: how long to wait, how often to retry.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (`None` = block forever). The default is
    /// generous because a diffusion job legitimately takes a while.
    pub read_timeout: Option<Duration>,
    /// Total connection attempts before giving up (≥ 1).
    pub attempts: u32,
    /// Sleep before the second attempt; doubles per retry, capped at
    /// [`ClientConfig::max_backoff`].
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(300)),
            attempts: 5,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Resolves, then dials every resolved address once per attempt, with
/// exponential backoff between attempts. The reconnect primitive both
/// the client and the router use.
///
/// # Errors
///
/// The last connection error after all attempts fail.
pub fn connect_with_backoff(
    addr: impl ToSocketAddrs,
    config: &ClientConfig,
) -> io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        ));
    }
    let mut last = None;
    let mut pause = config.backoff;
    for attempt in 0..config.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(pause);
            pause = (pause * 2).min(config.max_backoff);
        }
        for addr in &addrs {
            match TcpStream::connect_timeout(addr, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(error) => last = Some(error),
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// A blocking request/response NDJSON connection to one server.
pub struct NdjsonClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    addr: String,
    config: ClientConfig,
}

impl NdjsonClient {
    /// Connects (with the config's retry policy).
    ///
    /// # Errors
    ///
    /// The last connection error once every attempt failed.
    pub fn connect(addr: &str, config: ClientConfig) -> io::Result<NdjsonClient> {
        let stream = connect_with_backoff(addr, &config)?;
        let writer = stream.try_clone()?;
        Ok(NdjsonClient {
            writer,
            reader: BufReader::new(stream),
            addr: addr.to_owned(),
            config,
        })
    }

    /// Drops the current connection and dials again with the same
    /// policy. Pending server-side state (sessions!) is unaffected —
    /// the wire protocol is connection-agnostic.
    ///
    /// # Errors
    ///
    /// The last connection error once every attempt failed.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = connect_with_backoff(self.addr.as_str(), &self.config)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Sends one request envelope as one NDJSON line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, envelope: &RequestEnvelope) -> io::Result<()> {
        let line = serde_json::to_string(envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.send_line(&line)
    }

    /// Sends one raw line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next non-empty line; `None` at clean EOF.
    ///
    /// # Errors
    ///
    /// Socket read failures, including `WouldBlock`/`TimedOut` when
    /// the read timeout expires.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                return Ok(Some(line.trim_end_matches(['\r', '\n']).to_owned()));
            }
        }
    }

    /// Reads the next response envelope.
    ///
    /// # Errors
    ///
    /// Read failures; `UnexpectedEof` when the server closed; a
    /// decode failure maps to `InvalidData`.
    pub fn recv(&mut self) -> io::Result<ResponseEnvelope> {
        let line = self.recv_line()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {line}")))
    }

    /// Strict request-then-response exchange. Correct only for
    /// clients that never pipeline (tests, control calls); pipelined
    /// traffic must match ids itself.
    ///
    /// # Errors
    ///
    /// Send or receive failures.
    pub fn call(&mut self, envelope: &RequestEnvelope) -> io::Result<ResponseEnvelope> {
        self.send(envelope)?;
        self.recv()
    }

    /// Splits into independently owned send/receive halves, for
    /// callers pumping the two directions from different threads.
    ///
    /// # Errors
    ///
    /// Socket clone failures.
    pub fn split(self) -> io::Result<(NdjsonSender, NdjsonReceiver)> {
        Ok((
            NdjsonSender {
                writer: self.writer,
            },
            NdjsonReceiver {
                reader: self.reader,
            },
        ))
    }
}

/// The write half of a split [`NdjsonClient`].
pub struct NdjsonSender {
    writer: TcpStream,
}

impl NdjsonSender {
    /// Sends one raw line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

/// The read half of a split [`NdjsonClient`].
pub struct NdjsonReceiver {
    reader: BufReader<TcpStream>,
}

impl NdjsonReceiver {
    /// Reads the next non-empty line; `None` at clean EOF.
    ///
    /// # Errors
    ///
    /// Socket read failures.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                return Ok(Some(line.trim_end_matches(['\r', '\n']).to_owned()));
            }
        }
    }
}
