//! Shared line-oriented output with disconnect-tolerant semantics.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Is this I/O error the peer going away (as opposed to a real
/// failure)? A client that got every answer it wanted and closed its
/// end is normal protocol shutdown, not an error — `EPIPE` spew on a
/// closed pipe was a real serve bug this predicate fixes.
#[must_use]
pub fn is_disconnect(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// One NDJSON output stream (a TCP connection's write half, or
/// stdout) shared between the reader loop and any number of
/// completion-writer threads.
///
/// Every write is line + flush under one mutex, so concurrent writers
/// never interleave bytes. Failure handling is sticky and two-tier:
///
/// * a *disconnect* ([`is_disconnect`]) marks the sink closed — later
///   writes become silent no-ops (the peer is gone; there is nobody
///   to tell);
/// * any other I/O error marks the sink *failed* and records the
///   first message for the caller to report.
pub struct LineSink {
    out: Mutex<Box<dyn Write + Send>>,
    closed: AtomicBool,
    failed: AtomicBool,
    error: Mutex<Option<String>>,
}

impl LineSink {
    /// Wraps any writer (sockets, stdout, test buffers).
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> LineSink {
        LineSink {
            out: Mutex::new(out),
            closed: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// A sink over this process's stdout.
    #[must_use]
    pub fn stdout() -> LineSink {
        LineSink::new(Box::new(io::stdout()))
    }

    /// Writes one line (appending `\n`) and flushes. Returns `false`
    /// once the sink is closed or failed — callers use that to stop
    /// producing output for a connection that is gone.
    pub fn send_line(&self, line: &str) -> bool {
        if self.closed.load(Ordering::Relaxed) || self.failed.load(Ordering::Relaxed) {
            return false;
        }
        // One write call for line + newline: atomic on the wire and
        // exactly one failure point for the tests' failing writers.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        let mut out = self.out.lock().expect("sink lock");
        let outcome = out.write_all(framed.as_bytes()).and_then(|()| out.flush());
        drop(out);
        match outcome {
            Ok(()) => true,
            Err(error) if is_disconnect(error.kind()) => {
                self.closed.store(true, Ordering::Relaxed);
                false
            }
            Err(error) => {
                self.failed.store(true, Ordering::Relaxed);
                let mut slot = self.error.lock().expect("error lock");
                slot.get_or_insert_with(|| error.to_string());
                false
            }
        }
    }

    /// True once the peer disconnected mid-stream (clean close).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// True once a non-disconnect I/O error occurred.
    #[must_use]
    pub fn has_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// The first real I/O error message, when [`LineSink::has_failed`].
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("error lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FailAfter {
        remaining: usize,
        kind: io::ErrorKind,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.remaining == 0 {
                return Err(io::Error::new(self.kind, "peer gone"));
            }
            self.remaining -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_pipe_closes_cleanly_and_silences_later_writes() {
        let sink = LineSink::new(Box::new(FailAfter {
            remaining: 1,
            kind: io::ErrorKind::BrokenPipe,
        }));
        assert!(sink.send_line("first"));
        assert!(!sink.send_line("second"));
        assert!(sink.is_closed());
        assert!(!sink.has_failed());
        assert_eq!(sink.error(), None);
        // Already closed: a no-op, not another write attempt.
        assert!(!sink.send_line("third"));
    }

    #[test]
    fn real_errors_are_sticky_and_reported() {
        let sink = LineSink::new(Box::new(FailAfter {
            remaining: 0,
            kind: io::ErrorKind::Other,
        }));
        assert!(!sink.send_line("first"));
        assert!(sink.has_failed());
        assert!(!sink.is_closed());
        assert_eq!(sink.error().as_deref(), Some("peer gone"));
    }
}
