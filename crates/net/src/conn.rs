//! Per-connection state for the event-loop transport: incremental
//! NDJSON framing over a non-blocking socket, and a bounded outbound
//! queue that lets completion threads hand replies to the loop without
//! ever blocking on a slow peer.

use crate::poller::Interest;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::{Arc, Mutex};

/// Default per-line byte cap (a single envelope larger than this is
/// rejected with an error envelope, not buffered without bound).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default per-connection outbound high-water mark: a peer that falls
/// this many unread reply bytes behind is disconnected.
pub const DEFAULT_OUTBOUND_HIGH_WATER: usize = 8 << 20;

/// One framing product from [`LineFramer::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Framed {
    /// A complete line (terminator and trailing `\r` stripped).
    Line(String),
    /// A line that exceeded the cap; its `bytes` were discarded up to
    /// and including the terminating newline. Emitted exactly once per
    /// oversize line, in stream order, so the owner can answer it with
    /// an error envelope at the right position.
    Oversize { bytes: usize },
}

/// Incremental NDJSON line assembly. Bytes arrive in arbitrary chunks
/// (short reads, coalesced lines, lines straddling read boundaries);
/// complete lines come out in order. Memory is bounded: once a partial
/// line exceeds `max_line` the framer switches to discard mode until
/// the next newline, then reports one [`Framed::Oversize`].
pub struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    discarding: bool,
    discarded: usize,
}

impl LineFramer {
    #[must_use]
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            max_line: max_line.max(1),
            discarding: false,
            discarded: 0,
        }
    }

    /// Feeds one received chunk, appending completed products to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Framed>) {
        let mut rest = chunk;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.discarding {
                        self.discarded += pos + 1;
                        out.push(Framed::Oversize {
                            bytes: self.discarded,
                        });
                        self.discarding = false;
                        self.discarded = 0;
                    } else if self.buf.len() + pos > self.max_line {
                        // The whole oversize line arrived before we ever
                        // hit the cap mid-chunk.
                        out.push(Framed::Oversize {
                            bytes: self.buf.len() + pos + 1,
                        });
                        self.buf.clear();
                    } else {
                        self.buf.extend_from_slice(&rest[..pos]);
                        if self.buf.last() == Some(&b'\r') {
                            self.buf.pop();
                        }
                        let line = std::mem::take(&mut self.buf);
                        out.push(Framed::Line(String::from_utf8_lossy(&line).into_owned()));
                    }
                    rest = &rest[pos + 1..];
                }
                None => {
                    if self.discarding {
                        self.discarded += rest.len();
                    } else if self.buf.len() + rest.len() > self.max_line {
                        self.discarded = self.buf.len() + rest.len();
                        self.buf = Vec::new();
                        self.discarding = true;
                    } else {
                        self.buf.extend_from_slice(rest);
                    }
                    rest = &[];
                }
            }
        }
    }

    /// Bytes currently buffered for an incomplete line.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

struct OutboundInner {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of `chunks.front()` already written to the socket.
    head: usize,
    /// Total unsent bytes across all chunks.
    bytes: usize,
    /// Cleared when the loop tears the connection down; later pushes
    /// fail with `BrokenPipe` (which [`crate::LineSink`] treats as a
    /// clean close).
    open: bool,
    /// Set when a push overflows the high-water mark; the loop kills
    /// the connection on its next pass.
    killed: bool,
}

/// The outbound side of one event-loop connection. Completion threads
/// push framed reply lines (via [`QueueWriter`] under a `LineSink`);
/// the loop thread drains the queue into the non-blocking socket.
/// Pushing never blocks: past `high_water` buffered bytes the queue
/// flips to `killed` and the peer is disconnected — bounded
/// back-pressure instead of unbounded memory for a stalled reader.
pub struct OutboundQueue {
    inner: Mutex<OutboundInner>,
    high_water: usize,
    /// Called (outside the lock) whenever the loop must look at this
    /// queue again: new data, or a kill.
    notify: Box<dyn Fn() + Send + Sync>,
}

impl OutboundQueue {
    pub fn new(high_water: usize, notify: impl Fn() + Send + Sync + 'static) -> Arc<OutboundQueue> {
        Arc::new(OutboundQueue {
            inner: Mutex::new(OutboundInner {
                chunks: VecDeque::new(),
                head: 0,
                bytes: 0,
                open: true,
                killed: false,
            }),
            high_water: high_water.max(1),
            notify: Box::new(notify),
        })
    }

    /// Enqueues one framed line. Fails with `BrokenPipe` once the
    /// connection is gone or the high-water mark is exceeded.
    fn push(&self, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("outbound lock");
        if !inner.open || inner.killed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection gone"));
        }
        if inner.bytes + data.len() > self.high_water {
            inner.killed = true;
            drop(inner);
            (self.notify)();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "outbound high-water mark exceeded",
            ));
        }
        inner.bytes += data.len();
        inner.chunks.push_back(data.to_vec());
        drop(inner);
        (self.notify)();
        Ok(())
    }

    /// Loop-side teardown: silences all future pushes.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("outbound lock");
        inner.open = false;
        inner.chunks.clear();
        inner.bytes = 0;
        inner.head = 0;
    }

    /// True once a push overflowed the high-water mark.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.inner.lock().expect("outbound lock").killed
    }

    /// A `Write` front for this queue, suitable for `LineSink::new`.
    #[must_use]
    pub fn writer(self: &Arc<OutboundQueue>) -> QueueWriter {
        QueueWriter {
            queue: Arc::clone(self),
        }
    }
}

/// `Write` adapter: each `write` call enqueues one chunk. `LineSink`
/// frames line + `\n` into a single `write_all`, so every chunk is one
/// complete reply line and partial-line interleaving is impossible.
pub struct QueueWriter {
    queue: Arc<OutboundQueue>,
}

impl Write for QueueWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.queue.push(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// What a readiness-driven read pass concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Socket drained to `WouldBlock`; connection still live.
    Open,
    /// Peer closed (EOF or a disconnect-class error).
    Closed,
}

/// What a flush pass concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Queue fully drained; write interest can be dropped.
    Idle,
    /// Socket would block with bytes still queued; keep write interest.
    Pending,
    /// The queue overflowed its high-water mark; kill the connection.
    Killed,
    /// Peer closed under us.
    Closed,
}

/// One live event-loop connection: the non-blocking socket plus its
/// read-side [`LineFramer`] and write-side [`OutboundQueue`].
pub struct NonblockingConn {
    stream: TcpStream,
    framer: LineFramer,
    outbound: Arc<OutboundQueue>,
    /// The interest set currently registered with the poller.
    pub interest: Interest,
}

impl NonblockingConn {
    /// Takes ownership of an accepted stream, flips it non-blocking,
    /// and wires the outbound queue's notify hook.
    pub fn new(
        stream: TcpStream,
        max_line: usize,
        high_water: usize,
        notify: impl Fn() + Send + Sync + 'static,
    ) -> io::Result<NonblockingConn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(NonblockingConn {
            stream,
            framer: LineFramer::new(max_line),
            outbound: OutboundQueue::new(high_water, notify),
            interest: Interest::READ,
        })
    }

    #[must_use]
    pub fn raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    #[must_use]
    pub fn outbound(&self) -> &Arc<OutboundQueue> {
        &self.outbound
    }

    /// Drains the readable socket, appending framing products to
    /// `out`. Returns [`ReadOutcome::Closed`] on EOF or disconnect.
    pub fn read_ready(&mut self, scratch: &mut [u8], out: &mut Vec<Framed>) -> ReadOutcome {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => self.framer.push(&scratch[..n], out),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }

    /// Writes as much queued output as the socket will take without
    /// blocking.
    pub fn flush_ready(&mut self) -> FlushOutcome {
        let mut inner = self.outbound.inner.lock().expect("outbound lock");
        if inner.killed {
            return FlushOutcome::Killed;
        }
        loop {
            let Some(front) = inner.chunks.front() else {
                return FlushOutcome::Idle;
            };
            let head = inner.head;
            match self.stream.write(&front[head..]) {
                Ok(0) => return FlushOutcome::Closed,
                Ok(n) => {
                    inner.head += n;
                    inner.bytes -= n;
                    if inner.head == inner.chunks.front().map_or(0, Vec::len) {
                        inner.chunks.pop_front();
                        inner.head = 0;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    return FlushOutcome::Pending;
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FlushOutcome::Closed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer, chunks: &[&[u8]]) -> Vec<Framed> {
        let mut out = Vec::new();
        for chunk in chunks {
            framer.push(chunk, &mut out);
        }
        out
    }

    #[test]
    fn coalesced_lines_in_one_chunk_come_out_in_order() {
        let mut framer = LineFramer::new(64);
        let out = lines(&mut framer, &[b"alpha\nbeta\ngamma\n"]);
        assert_eq!(
            out,
            vec![
                Framed::Line("alpha".into()),
                Framed::Line("beta".into()),
                Framed::Line("gamma".into()),
            ]
        );
        assert_eq!(framer.buffered(), 0);
    }

    #[test]
    fn split_reads_reassemble_a_line_across_boundaries() {
        let mut framer = LineFramer::new(64);
        let out = lines(
            &mut framer,
            &[b"{\"id\":", b"1,\"k\"", b":\"v\"}", b"\n{\"id\":2}", b"\n"],
        );
        assert_eq!(
            out,
            vec![
                Framed::Line("{\"id\":1,\"k\":\"v\"}".into()),
                Framed::Line("{\"id\":2}".into()),
            ]
        );
    }

    #[test]
    fn one_byte_at_a_time_still_frames() {
        let mut framer = LineFramer::new(64);
        let mut out = Vec::new();
        for b in b"ab\ncd\n" {
            framer.push(&[*b], &mut out);
        }
        assert_eq!(
            out,
            vec![Framed::Line("ab".into()), Framed::Line("cd".into())]
        );
    }

    #[test]
    fn crlf_terminators_are_stripped() {
        let mut framer = LineFramer::new(64);
        let out = lines(&mut framer, &[b"hello\r\nworld\r", b"\n"]);
        assert_eq!(
            out,
            vec![Framed::Line("hello".into()), Framed::Line("world".into())]
        );
    }

    #[test]
    fn oversize_line_is_rejected_once_and_framing_resumes() {
        let mut framer = LineFramer::new(8);
        let big = vec![b'x'; 100];
        let mut out = Vec::new();
        framer.push(&big, &mut out);
        assert!(out.is_empty(), "no product until the newline arrives");
        framer.push(b"yy\nok\n", &mut out);
        assert_eq!(
            out,
            vec![Framed::Oversize { bytes: 103 }, Framed::Line("ok".into())]
        );
    }

    #[test]
    fn oversize_line_entirely_inside_one_chunk() {
        let mut framer = LineFramer::new(4);
        let out = lines(&mut framer, &[b"toolongline\nok\n"]);
        assert_eq!(
            out,
            vec![Framed::Oversize { bytes: 12 }, Framed::Line("ok".into())]
        );
    }

    #[test]
    fn outbound_queue_kills_past_high_water_and_notifies() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let notified = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&notified);
        let queue = OutboundQueue::new(10, move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        let mut writer = queue.writer();
        assert!(writer.write_all(b"12345").is_ok());
        assert_eq!(notified.load(Ordering::SeqCst), 1);
        assert!(!queue.is_killed());
        // 5 + 6 > 10: overflow kills the queue (and notifies the loop).
        let err = writer.write_all(b"678901").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(queue.is_killed());
        assert_eq!(notified.load(Ordering::SeqCst), 2);
        // Later writes fail fast without flipping state back.
        assert!(writer.write_all(b"x").is_err());
    }

    #[test]
    fn closed_queue_silences_writers() {
        let queue = OutboundQueue::new(1024, || {});
        queue.close();
        let mut writer = queue.writer();
        let err = writer.write_all(b"late reply").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(!queue.is_killed());
    }
}
