//! The blocking NDJSON-over-TCP server.

use crate::sink::LineSink;
use chatpattern_core::ConnCounters;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default cap on concurrently served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// What a server does with each connection's traffic. One handler
/// instance is shared by every connection (hold shared state in
/// `Arc`s; the engine itself is the usual state).
pub trait ConnectionHandler: Send + Sync + 'static {
    /// One non-empty NDJSON line arrived. Replies go through `sink`
    /// (shared with any completion threads the handler spawns), and
    /// may be written from any thread at any later time — the wire
    /// protocol's `id` is the correlation key, not ordering.
    fn on_line(&self, line: &str, sink: &Arc<LineSink>);

    /// The connection's read side ended (clean EOF, reset, or the
    /// write side failing). Per-connection teardown — e.g. flushing
    /// stats — goes here.
    fn on_disconnect(&self, _sink: &Arc<LineSink>) {}
}

/// A bound-but-not-yet-serving TCP server: `bind` first (so callers
/// can learn the OS-assigned port under `:0`), then [`spawn`] the
/// accept loop.
///
/// Threading model — deliberately boring, because the environment has
/// no async runtime: one accept thread, one thread per live
/// connection, and a counting gate that stops accepting beyond
/// `max_connections` (back-pressure lands in the OS accept backlog).
///
/// [`spawn`]: NdjsonServer::spawn
pub struct NdjsonServer {
    listener: TcpListener,
    addr: SocketAddr,
    max_connections: usize,
    counters: Option<Arc<ConnCounters>>,
}

impl NdjsonServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(addr: impl ToSocketAddrs, max_connections: usize) -> io::Result<NdjsonServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NdjsonServer {
            listener,
            addr,
            max_connections: max_connections.max(1),
            counters: None,
        })
    }

    /// Attaches connection counters (live/peak/disconnect reasons) so
    /// the transport shows up in the engine's `Stats`. Thread-transport
    /// disconnects are always *clean* — its back-pressure lands in the
    /// accept gate, never in a mid-stream kill.
    #[must_use]
    pub fn conn_counters(mut self, counters: Arc<ConnCounters>) -> NdjsonServer {
        self.counters = Some(counters);
        self
    }

    /// The bound address (the real port, even when bound with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the accept loop on a background thread and returns the
    /// handle used to stop it.
    pub fn spawn<H: ConnectionHandler>(self, handler: Arc<H>) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in self.listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // The gate: wait until a connection slot frees up
                    // before serving this stream (it is already
                    // accepted; the cap bounds *serving* threads).
                    let (count, freed) = &*gate;
                    let mut active = count.lock().expect("gate lock");
                    while *active >= self.max_connections {
                        active = freed.wait(active).expect("gate wait");
                    }
                    *active += 1;
                    drop(active);
                    let handler = Arc::clone(&handler);
                    let gate = Arc::clone(&gate);
                    let counters = self.counters.clone();
                    std::thread::spawn(move || {
                        if let Some(counters) = &counters {
                            counters.connected();
                        }
                        serve_connection(stream, &*handler, counters.as_deref());
                        let (count, freed) = &*gate;
                        *count.lock().expect("gate lock") -= 1;
                        freed.notify_one();
                    });
                }
            })
        };
        ServerHandle {
            addr: self.addr,
            stop,
            accept: Some(accept),
        }
    }
}

/// Runs one connection to completion: read lines, hand them to the
/// handler, notify it when the peer goes away. The disconnect is
/// counted before `on_disconnect` so a stats flush from the callback
/// already sees it.
fn serve_connection<H: ConnectionHandler>(
    stream: TcpStream,
    handler: &H,
    counters: Option<&ConnCounters>,
) {
    let sink = match stream.try_clone() {
        Ok(write_half) => Arc::new(LineSink::new(Box::new(write_half))),
        Err(_) => {
            if let Some(counters) = counters {
                counters.disconnected_clean();
            }
            return;
        }
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handler.on_line(&line, &sink);
        if sink.is_closed() || sink.has_failed() {
            break;
        }
    }
    // Note: completion threads may still hold the sink and deliver
    // late replies — a client that half-closed its write side keeps
    // receiving answers until the last writer drops the sink.
    if let Some(counters) = counters {
        counters.disconnected_clean();
    }
    handler.on_disconnect(&sink);
}

/// A running server. Dropping the handle *without* calling
/// [`ServerHandle::shutdown`] leaves the accept loop running for the
/// life of the process (what a serve binary wants); `shutdown` stops
/// accepting and joins the accept thread (what tests want).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Connections already being served run to their natural EOF.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop is blocked in `accept()`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Parks this thread on the accept loop forever (the serve
    /// binary's foreground mode).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}
