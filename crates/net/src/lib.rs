//! # cp_net — NDJSON-over-TCP transport for the ChatPattern wire
//! protocol
//!
//! The wire protocol (`docs/WIRE_PROTOCOL.md`) is transport-agnostic:
//! one JSON request envelope per line in, one response envelope per
//! line out, `id` as the only correlation key. This crate is the TCP
//! carrier for it — deliberately std-only (the offline build has no
//! async runtime), in two execution shapes behind one
//! [`ConnectionHandler`] trait:
//!
//! * a blocking thread-per-connection [`NdjsonServer`] with a bounded
//!   accept pool — simple, and capped by thread count;
//! * a readiness-driven [`EventLoopServer`] (epoll on Linux via direct
//!   `extern "C"` declarations, portable `poll(2)` fallback) that
//!   multiplexes thousands of mostly-idle connections on one loop
//!   thread, with incremental NDJSON framing ([`LineFramer`]) and
//!   bounded per-connection outbound queues (slow readers are
//!   disconnected past a high-water mark instead of buffered without
//!   bound).
//!
//! Both share the [`LineSink`] that treats a vanished peer (`EPIPE`
//! and friends) as a clean close instead of an error, the reconnecting
//! [`NdjsonClient`], and the [`EngineHandler`] that plugs a
//! [`PatternEngine`](chatpattern_core::PatternEngine) straight into
//! any transport. `chatpattern-serve --listen --transport
//! {threads,event-loop}` and the `chatpattern-router` fleet front-end
//! are both built from these parts.
//!
//! ```
//! use chatpattern_core::wire::RequestEnvelope;
//! use chatpattern_core::{ChatPattern, EngineConfig, PatternEngine, PatternRequest};
//! use cp_net::{ClientConfig, EngineHandler, NdjsonClient, NdjsonServer};
//! use std::sync::Arc;
//!
//! let system = ChatPattern::builder()
//!     .window(16)
//!     .training_patterns(8)
//!     .diffusion_steps(6)
//!     .build()?;
//! let engine = Arc::new(PatternEngine::with_config(system, EngineConfig::default())?);
//! let server = NdjsonServer::bind("127.0.0.1:0", 4).expect("binds");
//! let addr = server.local_addr();
//! let handle = server.spawn(Arc::new(EngineHandler::new(engine)));
//!
//! let mut client = NdjsonClient::connect(&addr.to_string(), ClientConfig::default())
//!     .expect("connects");
//! let reply = client
//!     .call(&RequestEnvelope {
//!         id: serde_json::to_value(&1u64),
//!         tenant: None,
//!         request: PatternRequest::Stats,
//!     })
//!     .expect("stats round-trips");
//! assert_eq!(reply.id.as_u64(), Some(1));
//! handle.shutdown();
//! # Ok::<(), chatpattern_core::Error>(())
//! ```

mod client;
#[cfg(unix)]
mod conn;
#[cfg(unix)]
mod event_loop;
mod handler;
#[cfg(unix)]
mod poller;
mod server;
mod sink;

pub use client::{connect_with_backoff, ClientConfig, NdjsonClient, NdjsonReceiver, NdjsonSender};
#[cfg(unix)]
pub use conn::{
    FlushOutcome, Framed, LineFramer, NonblockingConn, OutboundQueue, QueueWriter, ReadOutcome,
    DEFAULT_MAX_LINE_BYTES, DEFAULT_OUTBOUND_HIGH_WATER,
};
#[cfg(unix)]
pub use event_loop::{
    EventLoopConfig, EventLoopHandle, EventLoopServer, DEFAULT_EVENT_LOOP_CONNECTIONS,
};
pub use handler::EngineHandler;
#[cfg(unix)]
pub use poller::{raise_nofile_limit, Interest, PollEvent, Poller, WakePipe};
pub use server::{ConnectionHandler, NdjsonServer, ServerHandle, DEFAULT_MAX_CONNECTIONS};
pub use sink::{is_disconnect, LineSink};
