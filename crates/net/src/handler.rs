//! The bridge from transport to engine: a [`ConnectionHandler`] that
//! feeds decoded wire envelopes into a
//! [`PatternEngine`](chatpattern_core::PatternEngine).

use crate::server::ConnectionHandler;
use crate::sink::LineSink;
use chatpattern_core::wire::{decode_request_line, ResponseEnvelope};
use chatpattern_core::{PatternEngine, PatternService};
use std::sync::{Arc, Condvar, Mutex};

/// Serves one engine over any number of connections (TCP or stdio):
/// each accepted request gets a completion-writer thread, so replies
/// go out the moment the job finishes — out of submission order when
/// jobs finish out of order; the envelope `id` is the correlation
/// key. Malformed lines get an immediate error envelope and never
/// tear down the stream.
///
/// Back-pressure is **typed, not blocking**: requests are submitted
/// non-blocking under the envelope's tenant, so a full queue
/// (`QueueFull`) or an exhausted tenant quota (`Overloaded`) answers
/// immediately with an error envelope carrying `retry_after_ms`
/// instead of stalling the reader thread — one flooding connection
/// can no longer freeze every other connection's submissions. The
/// engine's bounded queue still caps in-flight jobs (and thereby
/// live writer threads) at roughly `queue_depth + workers`.
pub struct EngineHandler<S: PatternService + Send + Sync + 'static> {
    engine: Arc<PatternEngine<S>>,
    in_flight: Arc<(Mutex<usize>, Condvar)>,
}

impl<S: PatternService + Send + Sync + 'static> EngineHandler<S> {
    #[must_use]
    pub fn new(engine: Arc<PatternEngine<S>>) -> EngineHandler<S> {
        EngineHandler {
            engine,
            in_flight: Arc::new((Mutex::new(0), Condvar::new())),
        }
    }

    /// The served engine (for stats reporting at disconnect).
    #[must_use]
    pub fn engine(&self) -> &Arc<PatternEngine<S>> {
        &self.engine
    }

    /// Blocks until every accepted request has been answered — what a
    /// stdio loop does between EOF and printing its final stats, so
    /// the numbers include all in-flight work.
    pub fn drain(&self) {
        let (count, zero) = &*self.in_flight;
        let mut active = count.lock().expect("in-flight lock");
        while *active > 0 {
            active = zero.wait(active).expect("in-flight wait");
        }
    }
}

impl<S: PatternService + Send + Sync + 'static> ConnectionHandler for EngineHandler<S> {
    fn on_line(&self, line: &str, sink: &Arc<LineSink>) {
        match decode_request_line(line) {
            Ok(envelope) => {
                let id = envelope.id;
                let handle = match self
                    .engine
                    .submit_as(envelope.tenant.as_deref(), envelope.request)
                {
                    Ok(handle) => handle,
                    Err(error) => {
                        // QueueFull / Overloaded: answer right now with
                        // the retry-after hint rather than blocking the
                        // connection's reader.
                        sink.send_line(&ResponseEnvelope::error(id, &error).to_line());
                        return;
                    }
                };
                let sink = Arc::clone(sink);
                let in_flight = Arc::clone(&self.in_flight);
                *in_flight.0.lock().expect("in-flight lock") += 1;
                std::thread::spawn(move || {
                    let envelope = match handle.wait() {
                        Ok(response) => ResponseEnvelope::ok(id, response),
                        Err(error) => ResponseEnvelope::error(id, &error),
                    };
                    sink.send_line(&envelope.to_line());
                    let (count, zero) = &*in_flight;
                    *count.lock().expect("in-flight lock") -= 1;
                    zero.notify_all();
                });
            }
            Err((id, error)) => {
                sink.send_line(&ResponseEnvelope::error(id, &error).to_line());
            }
        }
    }
}
