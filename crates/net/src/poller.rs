//! Readiness polling over raw file descriptors, with zero crate deps.
//!
//! The event-loop transport needs one primitive the standard library does
//! not expose: "tell me which of these sockets are readable or writable
//! without blocking on any single one of them". This module provides it
//! twice over, behind one [`Poller`] front:
//!
//! * **epoll** on Linux, declared via direct `extern "C"` prototypes so no
//!   external crate is required. Interest is registered once per fd and the
//!   kernel hands back only the ready set — O(ready), which is what lets a
//!   single loop thread carry thousands of mostly-idle dialog connections.
//! * **`poll(2)`** everywhere else on unix (and on Linux when explicitly
//!   requested, so the fallback stays compiled and tested). Interest lives
//!   in a userland table and the whole table is re-submitted per wait —
//!   O(registered), fine for hundreds of fds and universally portable.
//!
//! Both backends are level-triggered: a fd keeps reporting ready until the
//! condition is drained, so the loop never needs to worry about missed
//! edges after a short read.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Reading will not block (includes EOF: the read returns 0).
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
    /// Error or hangup; the owner should read to completion and close.
    pub hangup: bool,
}

/// Interest set for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

// ---------------------------------------------------------------------------
// Shared libc declarations (unix).
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    // Declared with a fixed third argument instead of `...`; on every unix
    // ABI this crate targets the calling convention is identical for the
    // F_GETFL/F_SETFL/F_SETFD commands used here.
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
}

const F_SETFD: c_int = 2;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const FD_CLOEXEC: c_int = 1;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;
const POLLNVAL: i16 = 0x20;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an owned fd; no memory is passed.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// epoll backend (Linux only).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    // The x86_64 kernel ABI packs epoll_event to 12 bytes; other
    // architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    pub(super) const EPOLLIN: u32 = 0x1;
    pub(super) const EPOLLOUT: u32 = 0x4;
    pub(super) const EPOLLERR: u32 = 0x8;
    pub(super) const EPOLLHUP: u32 = 0x10;

    pub(super) struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut events = 0u32;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: ev outlives the call; the kernel copies it.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, i)
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, i)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels require a non-null event for DEL.
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout_ms: c_int,
        ) -> io::Result<()> {
            let n = loop {
                // SAFETY: buf is a live, correctly sized slice for the call.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let token = ev.data;
                out.push(PollEvent {
                    token,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd is owned and closed exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (all unix; the portable fallback).
// ---------------------------------------------------------------------------

struct PollTable {
    // fd -> (token, interest); re-submitted wholesale on every wait.
    interest: HashMap<RawFd, (u64, Interest)>,
}

impl PollTable {
    fn new() -> PollTable {
        PollTable {
            interest: HashMap::new(),
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
        if self.interest.insert(fd, (token, i)).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
        match self.interest.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.interest.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: c_int) -> io::Result<()> {
        let mut fds: Vec<PollFd> = Vec::with_capacity(self.interest.len());
        let mut tokens: Vec<u64> = Vec::with_capacity(self.interest.len());
        for (&fd, &(token, i)) in &self.interest {
            let mut events = 0i16;
            if i.readable {
                events |= POLLIN;
            }
            if i.writable {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd,
                events,
                revents: 0,
            });
            tokens.push(token);
        }
        let n = loop {
            // SAFETY: fds is a live, correctly sized slice for the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n >= 0 {
                break n;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (slot, token) in fds.iter().zip(tokens) {
            let re = slot.revents;
            if re == 0 {
                continue;
            }
            out.push(PollEvent {
                token,
                readable: re & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                writable: re & POLLOUT != 0,
                hangup: re & (POLLHUP | POLLERR | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Front.
// ---------------------------------------------------------------------------

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(PollTable),
}

/// Readiness poller over raw fds; epoll on Linux, `poll(2)` elsewhere.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// The platform-preferred backend.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                backend: Backend::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::poll_fallback()
        }
    }

    /// The portable `poll(2)` backend, selectable on any platform so the
    /// fallback path stays exercised by tests run on Linux.
    pub fn poll_fallback() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll(PollTable::new()),
        })
    }

    /// Human-readable backend name, for announce/debug lines.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.register(fd, token, interest),
            Backend::Poll(p) => p.register(fd, token, interest),
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.modify(fd, token, interest),
            Backend::Poll(p) => p.modify(fd, token, interest),
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.deregister(fd),
            Backend::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks up to `timeout_ms` (−1 = forever) and appends the ready set
    /// to `out`. `out` is cleared first.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(out, timeout_ms),
            Backend::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// Wake pipe.
// ---------------------------------------------------------------------------

/// A self-pipe used to interrupt a blocked [`Poller::wait`] from another
/// thread. Completion writers call [`WakePipe::wake`]; the loop registers
/// the read end and drains it on readiness.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds is a valid out-array of 2 ints.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        for fd in [read_fd, write_fd] {
            // SAFETY: plain fcntl on fds we just created.
            unsafe {
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
            if let Err(err) = set_nonblocking_fd(fd) {
                // SAFETY: both ends are owned and not yet shared.
                unsafe {
                    close(read_fd);
                    close(write_fd);
                }
                return Err(err);
            }
        }
        Ok(WakePipe { read_fd, write_fd })
    }

    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Non-blocking, signal-safe poke. A full pipe already guarantees the
    /// loop will wake, so EAGAIN is success.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a live stack buffer.
        unsafe {
            write(self.write_fd, (&byte as *const u8).cast(), 1);
        }
    }

    /// Drain all pending wake bytes (called by the loop on readiness).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: read into a live stack buffer of the stated size.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both ends are owned and closed exactly once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Raise the process `RLIMIT_NOFILE` soft limit toward the hard limit so
/// many-connection transports and benches are not capped by a conservative
/// shell default. Returns the resulting `(soft, hard)` pair, or `None` if
/// the limits could not be read.
pub fn raise_nofile_limit() -> Option<(u64, u64)> {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
    #[cfg(target_os = "macos")]
    const RLIMIT_NOFILE: c_int = 8;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_NOFILE: c_int = 7;

    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: lim is a valid out-pointer for both calls.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return None;
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                lim = want;
            }
        }
    }
    Some((lim.cur, lim.max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn exercise(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a zero-timeout wait reports nothing.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7));

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "listener should become readable on connect"
        );

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller
            .register(accepted.as_raw_fd(), 9, Interest::READ_WRITE)
            .unwrap();
        client.write_all(b"hi").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut saw = false;
        while std::time::Instant::now() < deadline && !saw {
            poller.wait(&mut events, 100).unwrap();
            saw = events.iter().any(|e| e.token == 9 && e.readable);
        }
        assert!(saw, "accepted socket should be readable after client write");
        // A fresh socket with write interest reports writable immediately.
        assert!(events
            .iter()
            .any(|e| e.token == 9 && (e.readable || e.writable)));

        poller
            .modify(accepted.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        poller.deregister(accepted.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn default_backend_reports_readiness() {
        exercise(Poller::new().unwrap());
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        let poller = Poller::poll_fallback().unwrap();
        assert_eq!(poller.backend_name(), "poll");
        exercise(poller);
    }

    #[test]
    fn wake_pipe_wakes_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.register(pipe.read_fd(), 1, Interest::READ).unwrap();
        pipe.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        pipe.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 1));
    }
}
