//! In-Painting extension: concatenate tiles, then repair the seams.

use crate::out_painting::axis_positions;
use crate::Canvas;
use cp_diffusion::PatternSampler;
use cp_squish::{Region, Topology};
use rand::RngCore;

/// Builds a `rows × cols` topology by tiling independently generated
/// `L × L` patches (the first one may be a given `seed`), then
/// regenerating a band of width `L/2` across every vertical seam, every
/// horizontal seam, and an `L/2 × L/2` block at every seam corner —
/// merging the shapes from both sides (paper Figure 7, left).
///
/// Model-call count equals `(2⌈W/L⌉−1)(2⌈H/L⌉−1)` as in §3.2.
///
/// # Panics
///
/// Panics if the target is smaller than the sampler window or `seed` is
/// not exactly window-sized.
#[must_use]
pub fn in_paint<S: PatternSampler + ?Sized>(
    sampler: &S,
    seed: Option<&Topology>,
    rows: usize,
    cols: usize,
    condition: Option<u32>,
    rng: &mut dyn RngCore,
) -> Topology {
    let l = sampler.window();
    assert!(rows >= l && cols >= l, "target smaller than sampler window");
    if let Some(seed) = seed {
        assert_eq!(
            seed.shape(),
            (l, l),
            "in-painting seed must be window-sized"
        );
    }
    let mut canvas = Canvas::new(rows, cols);
    // Tile pass: stride = window (tiles abut; last tile clamps/overlaps).
    let row_tiles = axis_positions(rows, l, l);
    let col_tiles = axis_positions(cols, l, l);
    let mut first = true;
    for &r0 in &row_tiles {
        for &c0 in &col_tiles {
            let tile = if first {
                first = false;
                match seed {
                    Some(s) => s.clone(),
                    None => sampler.generate(l, l, condition, rng),
                }
            } else {
                sampler.generate(l, l, condition, rng)
            };
            canvas.place(&tile, r0, c0);
        }
    }
    let band = l / 2;
    // Vertical seams: windows straddling each internal tile boundary.
    for &seam_x in col_tiles.iter().skip(1) {
        // `seam_x` is the boundary column of the tile.
        let col0 = seam_x.saturating_sub(band).min(cols - l);
        for &r0 in &row_tiles {
            let region = Region::new(r0, col0, r0 + l, col0 + l);
            // Repaint band centred on the seam, window-local coordinates.
            let local = seam_x - col0;
            let repaint = Region::new(
                0,
                local.saturating_sub(band / 2),
                l,
                (local + band / 2).min(l),
            );
            repaint_window(sampler, &mut canvas, region, repaint, condition, rng);
        }
    }
    // Horizontal seams.
    for &seam_y in row_tiles.iter().skip(1) {
        let row0 = seam_y.saturating_sub(band).min(rows - l);
        for &c0 in &col_tiles {
            let region = Region::new(row0, c0, row0 + l, c0 + l);
            let local = seam_y - row0;
            let repaint = Region::new(
                local.saturating_sub(band / 2),
                0,
                (local + band / 2).min(l),
                l,
            );
            repaint_window(sampler, &mut canvas, region, repaint, condition, rng);
        }
    }
    // Seam corners: central block at every internal boundary crossing.
    for &seam_y in row_tiles.iter().skip(1) {
        for &seam_x in col_tiles.iter().skip(1) {
            let row0 = seam_y.saturating_sub(band).min(rows - l);
            let col0 = seam_x.saturating_sub(band).min(cols - l);
            let region = Region::new(row0, col0, row0 + l, col0 + l);
            let ly = seam_y - row0;
            let lx = seam_x - col0;
            let repaint = Region::new(
                ly.saturating_sub(band / 2),
                lx.saturating_sub(band / 2),
                (ly + band / 2).min(l),
                (lx + band / 2).min(l),
            );
            repaint_window(sampler, &mut canvas, region, repaint, condition, rng);
        }
    }
    canvas.into_topology()
}

fn repaint_window<S: PatternSampler + ?Sized>(
    sampler: &S,
    canvas: &mut Canvas,
    region: Region,
    repaint: Region,
    condition: Option<u32>,
    rng: &mut dyn RngCore,
) {
    let mask = canvas.keep_mask_excluding(region, repaint);
    let known = canvas.window(region);
    let content = sampler.modify(&known, &mask, condition, rng);
    canvas.commit(region, &content);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn striped_model() -> DiffusionModel<MrfDenoiser> {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect();
        DiffusionModel::new(
            NoiseSchedule::scaled_default(8),
            MrfDenoiser::fit(&[(0, &data)], 1.0),
            16,
        )
    }

    #[test]
    fn in_paint_produces_target_shape() {
        let model = striped_model();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let big = in_paint(&model, None, 32, 32, Some(0), &mut rng);
        assert_eq!(big.shape(), (32, 32));
        assert!(big.count_ones() > 0);
    }

    #[test]
    fn in_paint_respects_given_seed_far_from_seams() {
        let model = striped_model();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let seed = Topology::from_fn(16, 16, |_, c| c % 4 < 2);
        let big = in_paint(&model, Some(&seed), 32, 32, Some(0), &mut rng);
        // Cells of the first tile outside any seam band survive: the
        // vertical seam band covers local cols 12..20, horizontal rows
        // 12..20 — so the top-left 12×12 corner is untouched.
        for r in 0..12 {
            for c in 0..12 {
                assert_eq!(big.get(r, c), seed.get(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn in_paint_call_count_matches_formula() {
        use crate::in_painting_samples;
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting<'a, S> {
            inner: &'a S,
            calls: &'a AtomicUsize,
        }
        impl<S: PatternSampler> PatternSampler for Counting<'_, S> {
            fn window(&self) -> usize {
                self.inner.window()
            }
            fn generate(
                &self,
                rows: usize,
                cols: usize,
                c: Option<u32>,
                rng: &mut dyn RngCore,
            ) -> Topology {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.generate(rows, cols, c, rng)
            }
            fn modify(
                &self,
                known: &Topology,
                mask: &cp_diffusion::Mask,
                c: Option<u32>,
                rng: &mut dyn RngCore,
            ) -> Topology {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.modify(known, mask, c, rng)
            }
        }
        let model = striped_model();
        let calls = AtomicUsize::new(0);
        let counting = Counting {
            inner: &model,
            calls: &calls,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = in_paint(&counting, None, 32, 32, Some(0), &mut rng);
        // (2·2−1)² = 9 model calls: 4 tiles + 4 seams + 1 corner.
        assert_eq!(
            calls.load(Ordering::Relaxed),
            in_painting_samples(32, 32, 16)
        );
    }

    #[test]
    fn non_multiple_targets_are_covered() {
        let model = striped_model();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let big = in_paint(&model, None, 24, 40, Some(0), &mut rng);
        assert_eq!(big.shape(), (24, 40));
    }

    #[test]
    #[should_panic(expected = "window-sized")]
    fn wrong_seed_shape_rejected() {
        let model = striped_model();
        let seed = Topology::filled(8, 8, false);
        let _ = in_paint(
            &model,
            Some(&seed),
            32,
            32,
            None,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
    }
}
