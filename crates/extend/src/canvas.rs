//! The extension working canvas.

use cp_diffusion::Mask;
use cp_squish::{Region, Topology};

/// A target-size topology canvas that tracks which cells have already
/// been generated.
///
/// The painting walks read a window, build the keep-mask from the
/// generated flags, hand both to the model, and paste the result back —
/// the model only ever sees `L × L` working space.
#[derive(Debug, Clone)]
pub struct Canvas {
    topology: Topology,
    generated: Topology,
}

impl Canvas {
    /// Creates an empty, fully-ungenerated canvas.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Canvas {
        Canvas {
            topology: Topology::filled(rows, cols, false),
            generated: Topology::filled(rows, cols, false),
        }
    }

    /// Canvas shape `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.topology.shape()
    }

    /// The topology accumulated so far.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consumes the canvas, returning the final topology.
    ///
    /// # Panics
    ///
    /// Panics if any cell was never generated — that would mean the
    /// painting walk failed to cover the canvas.
    #[must_use]
    pub fn into_topology(self) -> Topology {
        assert!(self.fully_generated(), "canvas has ungenerated cells left");
        self.topology
    }

    /// True when every cell has been generated.
    #[must_use]
    pub fn fully_generated(&self) -> bool {
        self.generated.count_ones() == self.generated.len()
    }

    /// Number of cells already generated.
    #[must_use]
    pub fn generated_count(&self) -> usize {
        self.generated.count_ones()
    }

    /// Pastes externally produced content and marks it generated.
    pub fn place(&mut self, content: &Topology, row0: usize, col0: usize) {
        self.topology.paste(content, row0, col0);
        let ones = Topology::filled(content.rows(), content.cols(), true);
        self.generated.paste(&ones, row0, col0);
    }

    /// The window content under `region`.
    #[must_use]
    pub fn window(&self, region: Region) -> Topology {
        self.topology.window(region)
    }

    /// Keep-mask of a window: cells already generated are kept.
    #[must_use]
    pub fn keep_mask(&self, region: Region) -> Mask {
        Mask::from_fn(region.height(), region.width(), |r, c| {
            self.generated.get(region.row0() + r, region.col0() + c)
        })
    }

    /// Keep-mask of a window that keeps generated cells *outside*
    /// `repaint` (window-local coordinates) but regenerates everything
    /// inside `repaint` even if previously generated — the seam-repair
    /// mask of in-painting.
    #[must_use]
    pub fn keep_mask_excluding(&self, region: Region, repaint: Region) -> Mask {
        Mask::from_fn(region.height(), region.width(), |r, c| {
            !repaint.contains(r, c) && self.generated.get(region.row0() + r, region.col0() + c)
        })
    }

    /// Writes back a window produced by the model and marks the whole
    /// window generated.
    pub fn commit(&mut self, region: Region, content: &Topology) {
        assert_eq!(
            (region.height(), region.width()),
            content.shape(),
            "window content shape mismatch"
        );
        self.topology.paste(content, region.row0(), region.col0());
        let ones = Topology::filled(region.height(), region.width(), true);
        self.generated.paste(&ones, region.row0(), region.col0());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_marks_generated() {
        let mut canvas = Canvas::new(8, 8);
        let seed = Topology::filled(4, 4, true);
        canvas.place(&seed, 0, 0);
        assert_eq!(canvas.generated_count(), 16);
        assert!(!canvas.fully_generated());
        assert!(canvas.topology().get(3, 3));
        assert!(!canvas.topology().get(4, 4));
    }

    #[test]
    fn keep_mask_reflects_generated_cells() {
        let mut canvas = Canvas::new(8, 8);
        canvas.place(&Topology::filled(4, 4, true), 0, 0);
        let mask = canvas.keep_mask(Region::new(0, 0, 8, 8));
        assert!(mask.keeps(0, 0));
        assert!(!mask.keeps(7, 7));
        assert_eq!(mask.keep_count(), 16);
    }

    #[test]
    fn keep_mask_excluding_forces_repaint() {
        let mut canvas = Canvas::new(4, 4);
        canvas.place(&Topology::filled(4, 4, true), 0, 0);
        let mask = canvas.keep_mask_excluding(Region::new(0, 0, 4, 4), Region::new(1, 1, 3, 3));
        assert!(mask.keeps(0, 0));
        assert!(!mask.keeps(1, 1)); // generated but inside repaint band
        assert_eq!(mask.regenerate_count(), 4);
    }

    #[test]
    fn into_topology_requires_full_coverage() {
        let mut canvas = Canvas::new(4, 4);
        canvas.place(&Topology::filled(4, 4, false), 0, 0);
        let t = canvas.into_topology();
        assert_eq!(t.shape(), (4, 4));
    }

    #[test]
    #[should_panic(expected = "ungenerated")]
    fn into_topology_panics_when_incomplete() {
        let canvas = Canvas::new(4, 4);
        let _ = canvas.into_topology();
    }
}
