//! Out-Painting extension: grow a pattern by generating new borders.

use crate::Canvas;
use cp_diffusion::PatternSampler;
use cp_squish::{Region, Topology};
use rand::RngCore;

/// Extends `seed` to `rows × cols` by walking `window × window` frames
/// over the canvas with the given stride, regenerating the not-yet
/// generated cells of each frame conditioned on the generated ones.
///
/// The walk is row-major; window positions step by `stride` and the last
/// position per axis clamps to the canvas edge, so coverage is complete.
///
/// # Panics
///
/// Panics if the seed is larger than the target, the target is smaller
/// than the sampler window, or `stride` is 0 or larger than the window.
#[must_use]
pub fn out_paint<S: PatternSampler + ?Sized>(
    sampler: &S,
    seed: &Topology,
    rows: usize,
    cols: usize,
    stride: usize,
    condition: Option<u32>,
    rng: &mut dyn RngCore,
) -> Topology {
    let l = sampler.window();
    assert!(
        seed.rows() <= rows && seed.cols() <= cols,
        "seed exceeds target"
    );
    assert!(rows >= l && cols >= l, "target smaller than sampler window");
    assert!(stride > 0 && stride <= l, "stride must be in 1..=window");
    let mut canvas = Canvas::new(rows, cols);
    canvas.place(seed, 0, 0);
    for row0 in axis_positions(rows, l, stride) {
        for col0 in axis_positions(cols, l, stride) {
            let region = Region::new(row0, col0, row0 + l, col0 + l);
            let mask = canvas.keep_mask(region);
            if mask.regenerate_count() == 0 {
                continue; // fully generated already (e.g. the seed tile)
            }
            let known = canvas.window(region);
            let content = sampler.modify(&known, &mask, condition, rng);
            canvas.commit(region, &content);
        }
    }
    canvas.into_topology()
}

/// Window origins along one axis: `0, s, 2s, …` with the last clamped to
/// `len − l` (deduplicated).
pub(crate) fn axis_positions(len: usize, l: usize, stride: usize) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut p = 0;
    loop {
        if p + l >= len {
            positions.push(len - l);
            break;
        }
        positions.push(p);
        p += stride;
    }
    positions.dedup();
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn striped_model() -> DiffusionModel<MrfDenoiser> {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect();
        DiffusionModel::new(
            NoiseSchedule::scaled_default(8),
            MrfDenoiser::fit(&[(0, &data)], 1.0),
            16,
        )
    }

    #[test]
    fn axis_positions_cover_with_clamp() {
        assert_eq!(axis_positions(32, 16, 8), vec![0, 8, 16]);
        assert_eq!(axis_positions(16, 16, 8), vec![0]);
        assert_eq!(axis_positions(20, 16, 8), vec![0, 4]);
    }

    #[test]
    fn out_paint_grows_seed_and_keeps_it() {
        let model = striped_model();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let seed = Topology::from_fn(16, 16, |_, c| c % 4 < 2);
        let big = out_paint(&model, &seed, 32, 32, 8, Some(0), &mut rng);
        assert_eq!(big.shape(), (32, 32));
        // Seed cells are preserved bit-exact (first window keeps them).
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(big.get(r, c), seed.get(r, c), "seed cell ({r},{c})");
            }
        }
        // Extended area actually contains drawn shapes.
        let extended_ones = (0..32)
            .flat_map(|r| (0..32).map(move |c| (r, c)))
            .filter(|&(r, c)| (r >= 16 || c >= 16) && big.get(r, c))
            .count();
        assert!(extended_ones > 0, "out-painting generated nothing");
    }

    #[test]
    fn out_paint_matches_sample_count_formula() {
        use crate::out_painting_samples;
        // Count via a wrapper sampler that tallies modify calls.
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting<'a, S> {
            inner: &'a S,
            calls: &'a AtomicUsize,
        }
        impl<S: PatternSampler> PatternSampler for Counting<'_, S> {
            fn window(&self) -> usize {
                self.inner.window()
            }
            fn generate(
                &self,
                rows: usize,
                cols: usize,
                c: Option<u32>,
                rng: &mut dyn RngCore,
            ) -> Topology {
                self.inner.generate(rows, cols, c, rng)
            }
            fn modify(
                &self,
                known: &Topology,
                mask: &cp_diffusion::Mask,
                c: Option<u32>,
                rng: &mut dyn RngCore,
            ) -> Topology {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.modify(known, mask, c, rng)
            }
        }
        let model = striped_model();
        let calls = AtomicUsize::new(0);
        let counting = Counting {
            inner: &model,
            calls: &calls,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let seed = model.generate(16, 16, Some(0), &mut rng);
        let _ = out_paint(&counting, &seed, 32, 32, 8, Some(0), &mut rng);
        // N_out = (⌈16/8⌉+1)² = 9, minus the seed window which needs no
        // regeneration.
        assert_eq!(
            calls.load(Ordering::Relaxed),
            out_painting_samples(32, 32, 16, 8) - 1
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let model = striped_model();
        let seed = Topology::from_fn(16, 16, |_, c| c % 4 < 2);
        let a = out_paint(
            &model,
            &seed,
            24,
            24,
            8,
            Some(0),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let b = out_paint(
            &model,
            &seed,
            24,
            24,
            8,
            Some(0),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "seed exceeds target")]
    fn oversized_seed_rejected() {
        let model = striped_model();
        let seed = Topology::filled(64, 64, false);
        let _ = out_paint(
            &model,
            &seed,
            32,
            32,
            8,
            None,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
    }
}
