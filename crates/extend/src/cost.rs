//! Sampling-count formulas (paper §3.2).

/// Number of model calls for In-Painting extension to `width × height`
/// with window `l`: `N_in = (2⌈W/L⌉ − 1)(2⌈H/L⌉ − 1)`.
///
/// # Panics
///
/// Panics if `l == 0` or the target is smaller than the window.
#[must_use]
pub fn in_painting_samples(width: usize, height: usize, l: usize) -> usize {
    assert!(l > 0, "window must be positive");
    assert!(width >= l && height >= l, "target smaller than window");
    let a = width.div_ceil(l);
    let b = height.div_ceil(l);
    (2 * a - 1) * (2 * b - 1)
}

/// Number of model calls for Out-Painting extension to `width × height`
/// with window `l` and stride `s`:
/// `N_out = (⌈(W−L)/S⌉ + 1)(⌈(H−L)/S⌉ + 1)`.
///
/// # Panics
///
/// Panics if `l == 0`, `s == 0` or the target is smaller than the window.
#[must_use]
pub fn out_painting_samples(width: usize, height: usize, l: usize, s: usize) -> usize {
    assert!(l > 0 && s > 0, "window and stride must be positive");
    assert!(width >= l && height >= l, "target smaller than window");
    let nx = (width - l).div_ceil(s) + 1;
    let ny = (height - l).div_ceil(s) + 1;
    nx * ny
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_painting_counts_match_paper_formula() {
        // W = H = 2L → (2·2−1)² = 9: 4 tiles + 4 seams + 1 corner.
        assert_eq!(in_painting_samples(256, 256, 128), 9);
        // W = H = L → a single tile.
        assert_eq!(in_painting_samples(128, 128, 128), 1);
        // 4L × 2L → (2·4−1)(2·2−1) = 21.
        assert_eq!(in_painting_samples(512, 256, 128), 21);
    }

    #[test]
    fn out_painting_counts_match_paper_formula() {
        // W = H = 2L, S = L/2 → (⌈128/64⌉+1)² = 9.
        assert_eq!(out_painting_samples(256, 256, 128, 64), 9);
        // Exactly the window → one call per axis.
        assert_eq!(out_painting_samples(128, 128, 128, 64), 1);
        // Full-stride: S = L → (⌈(512−128)/128⌉+1) = 4 per axis.
        assert_eq!(out_painting_samples(512, 512, 128, 128), 16);
    }

    #[test]
    fn out_painting_with_smaller_stride_costs_more() {
        let coarse = out_painting_samples(512, 512, 128, 128);
        let fine = out_painting_samples(512, 512, 128, 32);
        assert!(fine > coarse);
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn target_below_window_rejected() {
        let _ = in_painting_samples(64, 64, 128);
    }
}
