//! Method-dispatching extension entry point.

use crate::{in_paint, out_paint};
use cp_diffusion::PatternSampler;
use cp_squish::Topology;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Which extension algorithm to use — the choice the LLM agent makes from
/// its experience documents (out-painting favours legality, in-painting
/// favours diversity; paper Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExtensionMethod {
    /// Grow borders with a sliding window at stride `L/2` (default).
    #[default]
    OutPainting,
    /// Concatenate independent tiles and repair the seams.
    InPainting,
}

impl ExtensionMethod {
    /// Parses the names used in requirement lists (`"Out"`, `"In"`,
    /// `"out-painting"`, `"In-Painting"` …).
    #[must_use]
    pub fn from_name(name: &str) -> Option<ExtensionMethod> {
        let lower = name.to_ascii_lowercase();
        if lower.starts_with("out") {
            Some(ExtensionMethod::OutPainting)
        } else if lower.starts_with("in") {
            Some(ExtensionMethod::InPainting)
        } else {
            None
        }
    }

    /// Canonical requirement-list name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExtensionMethod::OutPainting => "Out",
            ExtensionMethod::InPainting => "In",
        }
    }
}

impl std::fmt::Display for ExtensionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtensionMethod::OutPainting => f.write_str("Out-Painting"),
            ExtensionMethod::InPainting => f.write_str("In-Painting"),
        }
    }
}

/// Extends `seed` to `rows × cols` with the chosen method.
///
/// For [`ExtensionMethod::OutPainting`] the stride is `L/2`. If the
/// target equals the seed shape, the seed is returned unchanged.
///
/// # Panics
///
/// Panics if the target is smaller than the seed or the sampler window.
#[must_use]
pub fn extend<S: PatternSampler + ?Sized>(
    sampler: &S,
    seed: &Topology,
    rows: usize,
    cols: usize,
    method: ExtensionMethod,
    condition: Option<u32>,
    rng: &mut dyn RngCore,
) -> Topology {
    if seed.shape() == (rows, cols) {
        return seed.clone();
    }
    let l = sampler.window();
    match method {
        ExtensionMethod::OutPainting => {
            out_paint(sampler, seed, rows, cols, (l / 2).max(1), condition, rng)
        }
        ExtensionMethod::InPainting => in_paint(sampler, Some(seed), rows, cols, condition, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> DiffusionModel<MrfDenoiser> {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect();
        DiffusionModel::new(
            NoiseSchedule::scaled_default(8),
            MrfDenoiser::fit(&[(0, &data)], 1.0),
            16,
        )
    }

    #[test]
    fn parses_method_names() {
        assert_eq!(
            ExtensionMethod::from_name("Out"),
            Some(ExtensionMethod::OutPainting)
        );
        assert_eq!(
            ExtensionMethod::from_name("out-painting"),
            Some(ExtensionMethod::OutPainting)
        );
        assert_eq!(
            ExtensionMethod::from_name("In-Painting"),
            Some(ExtensionMethod::InPainting)
        );
        assert_eq!(ExtensionMethod::from_name("sideways"), None);
    }

    #[test]
    fn same_size_is_identity() {
        let m = model();
        let seed = Topology::from_fn(16, 16, |r, _| r % 2 == 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = extend(
            &m,
            &seed,
            16,
            16,
            ExtensionMethod::OutPainting,
            None,
            &mut rng,
        );
        assert_eq!(out, seed);
    }

    #[test]
    fn both_methods_reach_target_size() {
        let m = model();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let seed = m.sample(16, 16, Some(0), &mut rng);
        for method in [ExtensionMethod::OutPainting, ExtensionMethod::InPainting] {
            let out = extend(&m, &seed, 48, 32, method, Some(0), &mut rng);
            assert_eq!(out.shape(), (48, 32), "{method}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ExtensionMethod::OutPainting.to_string(), "Out-Painting");
        assert_eq!(ExtensionMethod::InPainting.name(), "In");
    }
}
