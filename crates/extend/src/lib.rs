//! Free-size pattern extension (paper §3.2 "Pattern Extension", Figure 7).
//!
//! A fixed-window generative model (window `L × L`) is turned into a
//! free-size generator by sliding its RePaint-style modification over a
//! larger canvas:
//!
//! * **Out-Painting** ([`out_paint`]) — grow an existing pattern by
//!   generating new borders: windows walk the canvas with stride `S`,
//!   each keeping the already-generated cells and sampling the rest;
//! * **In-Painting** ([`in_paint`]) — concatenate independently generated
//!   tiles, then regenerate the bands across every tile seam and the
//!   blocks at every seam corner so the shapes merge;
//! * [`cost`] — the paper's sampling-count formulas
//!   `N_in = (2⌈W/L⌉−1)(2⌈H/L⌉−1)` and
//!   `N_out = (⌈(W−L)/S⌉+1)(⌈(H−L)/S⌉+1)`;
//! * [`extend`] — method-dispatching entry point used by the agent's
//!   `topology_extension` tool.
//!
//! Only the working window is ever handed to the model, so memory stays
//! bounded by `L²` regardless of target size.
//!
//! # Example
//!
//! ```
//! use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule, PatternSampler};
//! use cp_extend::{extend, ExtensionMethod};
//! use cp_squish::Topology;
//! use rand::SeedableRng;
//!
//! let data: Vec<Topology> =
//!     (0..6).map(|i| Topology::from_fn(16, 16, |_, c| (c + i) % 4 < 2)).collect();
//! let model = DiffusionModel::new(
//!     NoiseSchedule::scaled_default(8),
//!     MrfDenoiser::fit(&[(0, &data)], 1.0),
//!     16,
//! );
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
//! let seed = model.generate(16, 16, Some(0), &mut rng);
//! let big = extend(&model, &seed, 32, 32, ExtensionMethod::OutPainting, Some(0), &mut rng);
//! assert_eq!(big.shape(), (32, 32));
//! ```

pub mod canvas;
pub mod cost;
pub mod in_painting;
pub mod method;
pub mod out_painting;

pub use canvas::Canvas;
pub use cost::{in_painting_samples, out_painting_samples};
pub use in_painting::in_paint;
pub use method::{extend, ExtensionMethod};
pub use out_painting::out_paint;
