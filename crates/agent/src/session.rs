//! The agent execution loop: Thought → Action → Observation.

use crate::llm::{AgentAction, LanguageModel, Message, Role};
use crate::prompt::system_prompt;
use crate::tools::{ToolContext, ToolRegistry};
use cp_squish::SquishPattern;
use serde_json::json;

/// Outcome of a completed agent session.
#[derive(Debug)]
pub struct SessionReport {
    /// The agent's final summary.
    pub summary: String,
    /// Full ReAct transcript (system prompt, request, steps,
    /// observations).
    pub transcript: Vec<Message>,
    /// The delivered pattern library.
    pub library: Vec<SquishPattern>,
    /// Number of tool calls executed.
    pub tool_calls: usize,
}

/// Renders a transcript in the paper's
/// Thought/Action/Action-Input/Observation format.
#[must_use]
pub fn render_transcript(messages: &[Message]) -> String {
    let mut out = String::new();
    for m in messages {
        let tag = match m.role {
            Role::System => "[System]",
            Role::User => "[User]",
            Role::Assistant => "",
            Role::Observation => "Observation:",
        };
        if tag.is_empty() {
            out.push_str(&m.content);
        } else {
            out.push_str(tag);
            out.push(' ');
            out.push_str(&m.content);
        }
        out.push_str("\n\n");
    }
    out
}

impl SessionReport {
    /// Renders the transcript in the paper's
    /// Thought/Action/Action-Input/Observation format.
    #[must_use]
    pub fn render_transcript(&self) -> String {
        render_transcript(&self.transcript)
    }
}

/// Drives a [`LanguageModel`] against a [`ToolRegistry`] until it
/// finishes or the step budget runs out.
pub struct AgentSession<L> {
    llm: L,
    tools: ToolRegistry,
    ctx: ToolContext,
    max_steps: usize,
}

impl<L: std::fmt::Debug> std::fmt::Debug for AgentSession<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentSession")
            .field("llm", &self.llm)
            .field("max_steps", &self.max_steps)
            .finish_non_exhaustive()
    }
}

impl<L: LanguageModel> AgentSession<L> {
    /// Assembles a session (default budget: 4096 steps).
    #[must_use]
    pub fn new(llm: L, tools: ToolRegistry, ctx: ToolContext) -> AgentSession<L> {
        AgentSession {
            llm,
            tools,
            ctx,
            max_steps: 4096,
        }
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> AgentSession<L> {
        self.max_steps = max_steps.max(1);
        self
    }

    /// Runs the loop on a natural-language request.
    #[must_use]
    pub fn run(mut self, request: &str) -> SessionReport {
        let mut transcript = vec![
            Message::new(
                Role::System,
                system_prompt(&self.tools, self.ctx.knowledge()),
            ),
            Message::new(Role::User, request),
        ];
        let mut tool_calls = 0usize;
        let mut summary = String::from("step budget exhausted before the agent finished");
        for _ in 0..self.max_steps {
            let step = self.llm.next_step(&transcript);
            match step.action {
                AgentAction::Finish { summary: s } => {
                    transcript.push(Message::new(
                        Role::Assistant,
                        format!("Thought: {}\nFinal Answer: {s}", step.thought),
                    ));
                    summary = s;
                    break;
                }
                AgentAction::ToolCall { name, args } => {
                    transcript.push(Message::new(
                        Role::Assistant,
                        format!(
                            "Thought: {}\nAction: {}\nAction Input: {}",
                            step.thought, name, args
                        ),
                    ));
                    tool_calls += 1;
                    // One dispatch path for every invocation; failures
                    // come back to the model as error observations, the
                    // same way a real LLM sees them.
                    let observation = self
                        .tools
                        .dispatch(&mut self.ctx, &name, &args)
                        .unwrap_or_else(|e| json!({"error": e.message()}));
                    transcript.push(Message::new(Role::Observation, observation.to_string()));
                }
            }
        }
        SessionReport {
            summary,
            transcript,
            library: self.ctx.into_library(),
            tool_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::{AgentStep, MockLlm};
    use crate::{ExpertPolicy, KnowledgeBase};
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use cp_drc::DesignRules;
    use cp_legalize::Legalizer;
    use cp_squish::Topology;

    fn test_ctx(seed: u64) -> ToolContext {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 8 < 4))
            .collect();
        let denoiser = MrfDenoiser::fit(&[(0, &data), (1, &data)], 1.0);
        let model = DiffusionModel::new(NoiseSchedule::scaled_default(8), denoiser, 16);
        ToolContext::new(
            Box::new(model),
            Legalizer::new(DesignRules::new(20, 20, 400)),
            KnowledgeBase::new(),
            seed,
        )
    }

    #[test]
    fn mock_session_round_trips_tool_calls() {
        let mock = MockLlm::new(vec![AgentStep {
            thought: "generate one".into(),
            action: crate::AgentAction::ToolCall {
                name: "topology_gen".into(),
                args: serde_json::json!({"count": 1, "style": "Layer-10001"}),
            },
        }]);
        let report = AgentSession::new(mock, ToolRegistry::standard(), test_ctx(1)).run("test");
        assert_eq!(report.tool_calls, 1);
        // Transcript: system, user, assistant, observation, final.
        assert!(report.transcript.len() >= 5);
        let rendered = report.render_transcript();
        assert!(rendered.contains("Action: topology_gen"));
        assert!(rendered.contains("Observation:"));
    }

    #[test]
    fn unknown_tool_produces_error_observation() {
        let mock = MockLlm::new(vec![AgentStep {
            thought: "bad call".into(),
            action: crate::AgentAction::ToolCall {
                name: "no_such_tool".into(),
                args: serde_json::json!({}),
            },
        }]);
        let report = AgentSession::new(mock, ToolRegistry::standard(), test_ctx(2)).run("test");
        let obs = report
            .transcript
            .iter()
            .find(|m| m.role == Role::Observation)
            .expect("observation exists");
        assert!(obs.content.contains("unknown tool"));
    }

    #[test]
    fn expert_policy_delivers_small_library_end_to_end() {
        let policy = ExpertPolicy::new(4, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(3))
            .run("Generate 6 patterns, topology size 16*16, physical size 2000nm x 2000nm, style Layer-10001.");
        assert_eq!(report.library.len(), 6, "summary: {}", report.summary);
        assert!(report.tool_calls >= 4);
        let rendered = report.render_transcript();
        assert!(rendered.contains("# Requirement - subtask 1"));
        assert!(rendered.contains("Action: topology_gen"));
        assert!(rendered.contains("Action: legalize"));
        assert!(rendered.contains("Final Answer"));
    }

    #[test]
    fn expert_policy_extends_when_target_exceeds_window() {
        let policy = ExpertPolicy::new(2, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(4))
            .run("Generate 2 patterns, topology size 32*32, physical size 4000nm x 4000nm, style Layer-10001.");
        let rendered = report.render_transcript();
        assert!(
            rendered.contains("Action: topology_extension"),
            "agent should extend beyond its 16-cell window"
        );
        assert!(rendered.contains("Action: get_documentation"));
        assert_eq!(report.library.len(), 2, "summary: {}", report.summary);
        for p in &report.library {
            assert_eq!(p.topology().shape(), (32, 32));
            assert_eq!(p.physical_width(), 4000);
        }
    }

    #[test]
    fn expert_policy_handles_two_subtasks() {
        let policy = ExpertPolicy::new(4, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(5)).run(
            "Generate 4 patterns in total, topology size chosen from 16*16 and 32*32, \
             physical size 4000nm x 4000nm, style Layer-10001.",
        );
        assert_eq!(report.library.len(), 4, "summary: {}", report.summary);
        let rendered = report.render_transcript();
        assert!(rendered.contains("# Requirement - subtask 2"));
    }
}
