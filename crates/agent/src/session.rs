//! The agent execution loop: Thought → Action → Observation, across
//! one *or many* user turns.
//!
//! An [`AgentSession`] is a resumable dialog: constructing it opens the
//! session (system prompt, tool context), [`AgentSession::turn`] runs
//! one ReAct loop over a user utterance and returns a [`TurnReport`],
//! and [`AgentSession::close`] consumes the session into the final
//! [`SessionReport`]. The working pattern library, the requirement
//! state carried by the policy, and the full transcript persist across
//! turns — a follow-up like "now make them denser" operates on the
//! previous turn's results instead of starting from scratch.
//! [`AgentSession::run`] remains as the one-shot convenience
//! (open → one turn → close) the `Chat` request path uses.

use crate::llm::{AgentAction, LanguageModel, Message, Role};
use crate::policy::{ExpertPolicy, PolicySnapshot};
use crate::prompt::system_prompt;
use crate::tools::{ContextSnapshot, ToolContext, ToolRegistry};
use cp_diffusion::PatternSampler;
use cp_legalize::Legalizer;
use cp_squish::SquishPattern;
use serde::{Deserialize, Serialize};
use serde_json::json;

/// Why a session snapshot could not be restored (corrupt or
/// incompatible serialized state). Reported as a typed error, never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
}

impl SnapshotError {
    /// Creates an error with a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> SnapshotError {
        SnapshotError {
            message: message.into(),
        }
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot restore failed: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// Outcome of a completed agent session (all turns).
#[derive(Debug)]
pub struct SessionReport {
    /// The agent's final summary (of the last turn).
    pub summary: String,
    /// Full ReAct transcript (system prompt, every turn's request,
    /// steps and observations).
    pub transcript: Vec<Message>,
    /// The delivered pattern library.
    pub library: Vec<SquishPattern>,
    /// Number of tool calls executed across all turns.
    pub tool_calls: usize,
    /// Number of user turns processed.
    pub turns: usize,
}

/// Outcome of one user turn inside a live session.
#[derive(Debug)]
pub struct TurnReport {
    /// 1-based index of this turn within the session.
    pub turn: usize,
    /// The agent's summary of this turn.
    pub summary: String,
    /// Transcript slice produced by this turn (the user utterance,
    /// the agent's steps and the tool observations).
    pub transcript: Vec<Message>,
    /// Tool calls executed during this turn.
    pub tool_calls: usize,
    /// Library size after this turn (cumulative across turns).
    pub library_len: usize,
}

/// Renders a transcript in the paper's
/// Thought/Action/Action-Input/Observation format.
#[must_use]
pub fn render_transcript(messages: &[Message]) -> String {
    let mut out = String::new();
    for m in messages {
        let tag = match m.role {
            Role::System => "[System]",
            Role::User => "[User]",
            Role::Assistant => "",
            Role::Observation => "Observation:",
        };
        if tag.is_empty() {
            out.push_str(&m.content);
        } else {
            out.push_str(tag);
            out.push(' ');
            out.push_str(&m.content);
        }
        out.push_str("\n\n");
    }
    out
}

impl SessionReport {
    /// Renders the transcript in the paper's
    /// Thought/Action/Action-Input/Observation format.
    #[must_use]
    pub fn render_transcript(&self) -> String {
        render_transcript(&self.transcript)
    }
}

impl TurnReport {
    /// Renders this turn's transcript slice in the paper's format.
    #[must_use]
    pub fn render_transcript(&self) -> String {
        render_transcript(&self.transcript)
    }
}

/// Drives a [`LanguageModel`] against a [`ToolRegistry`], one user
/// turn at a time, until closed.
pub struct AgentSession<L> {
    llm: L,
    tools: ToolRegistry,
    ctx: ToolContext,
    max_steps: usize,
    transcript: Vec<Message>,
    tool_calls: usize,
    turns: usize,
    last_summary: String,
}

impl<L: std::fmt::Debug> std::fmt::Debug for AgentSession<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentSession")
            .field("llm", &self.llm)
            .field("max_steps", &self.max_steps)
            .field("turns", &self.turns)
            .finish_non_exhaustive()
    }
}

impl<L: LanguageModel> AgentSession<L> {
    /// Opens a session (default budget: 4096 steps per turn). The
    /// system prompt is rendered once, here, and every later turn
    /// appends to the same transcript.
    #[must_use]
    pub fn new(llm: L, tools: ToolRegistry, ctx: ToolContext) -> AgentSession<L> {
        let transcript = vec![Message::new(
            Role::System,
            system_prompt(&tools, ctx.knowledge()),
        )];
        AgentSession {
            llm,
            tools,
            ctx,
            max_steps: 4096,
            transcript,
            tool_calls: 0,
            turns: 0,
            last_summary: String::new(),
        }
    }

    /// Overrides the per-turn step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> AgentSession<L> {
        self.max_steps = max_steps.max(1);
        self
    }

    /// Number of user turns processed so far.
    #[must_use]
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// The pattern library accumulated so far (across turns).
    #[must_use]
    pub fn library(&self) -> &[SquishPattern] {
        self.ctx.library()
    }

    /// The full transcript so far (system prompt plus every turn).
    #[must_use]
    pub fn transcript(&self) -> &[Message] {
        &self.transcript
    }

    /// Runs one ReAct loop over `utterance`. The working library,
    /// the tool store, and the knowledge base all carry over from
    /// previous turns, so follow-ups refine earlier results.
    pub fn turn(&mut self, utterance: &str) -> TurnReport {
        let turn_start = self.transcript.len();
        self.llm.begin_turn();
        self.transcript.push(Message::new(Role::User, utterance));
        let mut tool_calls = 0usize;
        let mut summary = String::from("step budget exhausted before the agent finished");
        for _ in 0..self.max_steps {
            let step = self.llm.next_step(&self.transcript);
            match step.action {
                AgentAction::Finish { summary: s } => {
                    self.transcript.push(Message::new(
                        Role::Assistant,
                        format!("Thought: {}\nFinal Answer: {s}", step.thought),
                    ));
                    summary = s;
                    break;
                }
                AgentAction::ToolCall { name, args } => {
                    self.transcript.push(Message::new(
                        Role::Assistant,
                        format!(
                            "Thought: {}\nAction: {}\nAction Input: {}",
                            step.thought, name, args
                        ),
                    ));
                    tool_calls += 1;
                    // One dispatch path for every invocation; failures
                    // come back to the model as error observations, the
                    // same way a real LLM sees them.
                    let observation = self
                        .tools
                        .dispatch(&mut self.ctx, &name, &args)
                        .unwrap_or_else(|e| json!({"error": e.message()}));
                    self.transcript
                        .push(Message::new(Role::Observation, observation.to_string()));
                }
            }
        }
        self.turns += 1;
        self.tool_calls += tool_calls;
        self.last_summary.clone_from(&summary);
        TurnReport {
            turn: self.turns,
            summary,
            transcript: self.transcript[turn_start..].to_vec(),
            tool_calls,
            library_len: self.ctx.library().len(),
        }
    }

    /// Closes the session, consuming it into the final report.
    #[must_use]
    pub fn close(self) -> SessionReport {
        let summary = if self.turns == 0 {
            String::from("session closed before any turn")
        } else {
            self.last_summary
        };
        SessionReport {
            summary,
            transcript: self.transcript,
            library: self.ctx.into_library(),
            tool_calls: self.tool_calls,
            turns: self.turns,
        }
    }

    /// One-shot convenience: open → one turn → close (the classic
    /// single-request path behind `PatternRequest::Chat`).
    #[must_use]
    pub fn run(mut self, request: &str) -> SessionReport {
        let _ = self.turn(request);
        self.close()
    }
}

/// The serializable between-turns state of an
/// [`AgentSession<ExpertPolicy>`]: the full transcript and counters,
/// the policy's cross-turn state, and the tool context's mutable state
/// (store, library, knowledge, RNG position). Dependencies — the
/// sampler, the legalizer, the tool registry — are re-injected on
/// [`AgentSession::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSnapshot {
    /// The full transcript (system prompt plus every turn).
    pub transcript: Vec<Message>,
    /// Tool calls executed across all turns so far.
    pub tool_calls: usize,
    /// User turns processed so far.
    pub turns: usize,
    /// The last turn's summary.
    pub last_summary: String,
    /// Per-turn step budget.
    pub max_steps: usize,
    /// The expert policy's cross-turn state.
    pub policy: PolicySnapshot,
    /// The tool context's mutable state.
    pub context: ContextSnapshot,
}

impl AgentSession<ExpertPolicy> {
    /// Captures the session's complete between-turns state. Taking a
    /// snapshot does not disturb the session: follow-up turns on the
    /// original and on a [`AgentSession::restore`]d copy produce
    /// byte-identical transcripts and libraries.
    ///
    /// Snapshots are defined *between* turns (the mid-turn plan state
    /// of the policy is rebuilt by
    /// [`LanguageModel::begin_turn`] at the next turn either way).
    #[must_use]
    pub fn snapshot(&self) -> AgentSnapshot {
        AgentSnapshot {
            transcript: self.transcript.clone(),
            tool_calls: self.tool_calls,
            turns: self.turns,
            last_summary: self.last_summary.clone(),
            max_steps: self.max_steps,
            policy: self.llm.snapshot(),
            context: self.ctx.snapshot(),
        }
    }

    /// Rebuilds a session from an [`AgentSnapshot`] plus freshly
    /// injected dependencies. The system prompt is *not* re-rendered —
    /// the snapshot's transcript already carries it, so the restored
    /// transcript is byte-identical to the original.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the snapshot's RNG state is
    /// corrupt.
    pub fn restore(
        snapshot: AgentSnapshot,
        tools: ToolRegistry,
        sampler: Box<dyn PatternSampler>,
        legalizer: Legalizer,
    ) -> Result<AgentSession<ExpertPolicy>, SnapshotError> {
        let ctx = ToolContext::restore(snapshot.context, sampler, legalizer)?;
        Ok(AgentSession {
            llm: ExpertPolicy::from_snapshot(snapshot.policy),
            tools,
            ctx,
            max_steps: snapshot.max_steps.max(1),
            transcript: snapshot.transcript,
            tool_calls: snapshot.tool_calls,
            turns: snapshot.turns,
            last_summary: snapshot.last_summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::{AgentStep, MockLlm};
    use crate::{ExpertPolicy, KnowledgeBase};
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use cp_drc::DesignRules;
    use cp_legalize::Legalizer;
    use cp_squish::Topology;

    fn test_deps() -> (Box<dyn cp_diffusion::PatternSampler>, Legalizer) {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 8 < 4))
            .collect();
        let denoiser = MrfDenoiser::fit(&[(0, &data), (1, &data)], 1.0);
        let model = DiffusionModel::new(NoiseSchedule::scaled_default(8), denoiser, 16);
        (
            Box::new(model),
            Legalizer::new(DesignRules::new(20, 20, 400)),
        )
    }

    fn test_ctx(seed: u64) -> ToolContext {
        let (sampler, legalizer) = test_deps();
        ToolContext::new(sampler, legalizer, KnowledgeBase::new(), seed)
    }

    #[test]
    fn mock_session_round_trips_tool_calls() {
        let mock = MockLlm::new(vec![AgentStep {
            thought: "generate one".into(),
            action: crate::AgentAction::ToolCall {
                name: "topology_gen".into(),
                args: serde_json::json!({"count": 1, "style": "Layer-10001"}),
            },
        }]);
        let report = AgentSession::new(mock, ToolRegistry::standard(), test_ctx(1)).run("test");
        assert_eq!(report.tool_calls, 1);
        assert_eq!(report.turns, 1);
        // Transcript: system, user, assistant, observation, final.
        assert!(report.transcript.len() >= 5);
        let rendered = report.render_transcript();
        assert!(rendered.contains("Action: topology_gen"));
        assert!(rendered.contains("Observation:"));
    }

    #[test]
    fn unknown_tool_produces_error_observation() {
        let mock = MockLlm::new(vec![AgentStep {
            thought: "bad call".into(),
            action: crate::AgentAction::ToolCall {
                name: "no_such_tool".into(),
                args: serde_json::json!({}),
            },
        }]);
        let report = AgentSession::new(mock, ToolRegistry::standard(), test_ctx(2)).run("test");
        let obs = report
            .transcript
            .iter()
            .find(|m| m.role == Role::Observation)
            .expect("observation exists");
        assert!(obs.content.contains("unknown tool"));
    }

    #[test]
    fn expert_policy_delivers_small_library_end_to_end() {
        let policy = ExpertPolicy::new(4, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(3))
            .run("Generate 6 patterns, topology size 16*16, physical size 2000nm x 2000nm, style Layer-10001.");
        assert_eq!(report.library.len(), 6, "summary: {}", report.summary);
        assert!(report.tool_calls >= 4);
        let rendered = report.render_transcript();
        assert!(rendered.contains("# Requirement - subtask 1"));
        assert!(rendered.contains("Action: topology_gen"));
        assert!(rendered.contains("Action: legalize"));
        assert!(rendered.contains("Final Answer"));
    }

    #[test]
    fn expert_policy_extends_when_target_exceeds_window() {
        let policy = ExpertPolicy::new(2, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(4))
            .run("Generate 2 patterns, topology size 32*32, physical size 4000nm x 4000nm, style Layer-10001.");
        let rendered = report.render_transcript();
        assert!(
            rendered.contains("Action: topology_extension"),
            "agent should extend beyond its 16-cell window"
        );
        assert!(rendered.contains("Action: get_documentation"));
        assert_eq!(report.library.len(), 2, "summary: {}", report.summary);
        for p in &report.library {
            assert_eq!(p.topology().shape(), (32, 32));
            assert_eq!(p.physical_width(), 4000);
        }
    }

    #[test]
    fn expert_policy_handles_two_subtasks() {
        let policy = ExpertPolicy::new(4, 2);
        let report = AgentSession::new(policy, ToolRegistry::standard(), test_ctx(5)).run(
            "Generate 4 patterns in total, topology size chosen from 16*16 and 32*32, \
             physical size 4000nm x 4000nm, style Layer-10001.",
        );
        assert_eq!(report.library.len(), 4, "summary: {}", report.summary);
        let rendered = report.render_transcript();
        assert!(rendered.contains("# Requirement - subtask 2"));
    }

    #[test]
    fn turns_accumulate_library_and_transcript() {
        let mut session = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(6),
        );
        let first = session.turn(
            "Generate 2 patterns, topology size 16*16, physical size 2000nm x 2000nm, \
             style Layer-10001.",
        );
        assert_eq!(first.turn, 1);
        assert_eq!(first.library_len, 2, "summary: {}", first.summary);
        let second = session.turn("Generate 1 more pattern.");
        assert_eq!(second.turn, 2);
        assert_eq!(
            second.library_len, 3,
            "the follow-up turn adds to the same library (summary: {})",
            second.summary
        );
        // The per-turn transcript slice starts at this turn's utterance.
        assert_eq!(second.transcript[0].role, Role::User);
        let report = session.close();
        assert_eq!(report.turns, 2);
        assert_eq!(report.library.len(), 3);
        assert_eq!(
            report.summary, second.summary,
            "close reports the last turn"
        );
        // The full transcript contains both user turns in order.
        let users: Vec<&Message> = report
            .transcript
            .iter()
            .filter(|m| m.role == Role::User)
            .collect();
        assert_eq!(users.len(), 2);
        assert!(users[1].content.contains("1 more"));
    }

    #[test]
    fn run_equals_one_turn_then_close() {
        let request = "Generate 2 patterns, topology size 16*16, physical size 2000nm x 2000nm, \
             style Layer-10001.";
        let one_shot = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(7),
        )
        .run(request);
        let mut session = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(7),
        );
        let _ = session.turn(request);
        let stepwise = session.close();
        assert_eq!(one_shot.summary, stepwise.summary);
        assert_eq!(one_shot.transcript, stepwise.transcript);
        assert_eq!(one_shot.library, stepwise.library);
    }

    #[test]
    fn restored_session_turns_match_the_uninterrupted_run() {
        let request = "Generate 2 patterns, topology size 16*16, physical size 2000nm x 2000nm, \
                       style Layer-10001.";
        let follow_up = "1 more pattern.";
        // Uninterrupted: two turns straight through.
        let mut uninterrupted = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(9),
        );
        let _ = uninterrupted.turn(request);
        let _ = uninterrupted.turn(follow_up);
        // Interrupted: one turn, snapshot, restore with fresh deps
        // (simulated crash), then the follow-up on the restored copy.
        let mut original = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(9),
        );
        let _ = original.turn(request);
        let snapshot = original.snapshot();
        // The snapshot itself survives JSON (the persistence format).
        let text = serde_json::to_string(&snapshot).expect("serializes");
        let snapshot: AgentSnapshot = serde_json::from_str(&text).expect("parses");
        drop(original);
        let (sampler, legalizer) = test_deps();
        let mut restored =
            AgentSession::restore(snapshot, ToolRegistry::standard(), sampler, legalizer)
                .expect("restores");
        let _ = restored.turn(follow_up);
        let a = uninterrupted.close();
        let b = restored.close();
        assert_eq!(a.transcript, b.transcript, "transcripts diverged");
        assert_eq!(a.library, b.library, "libraries diverged");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.tool_calls, b.tool_calls);
        assert_eq!(a.turns, b.turns);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let session = AgentSession::new(
            ExpertPolicy::new(4, 2),
            ToolRegistry::standard(),
            test_ctx(10),
        );
        let mut snapshot = session.snapshot();
        snapshot.context.rng.truncate(3);
        let (sampler, legalizer) = test_deps();
        let err = AgentSession::restore(snapshot, ToolRegistry::standard(), sampler, legalizer)
            .expect_err("corrupt RNG state must be rejected");
        assert!(err.message().contains("corrupt RNG state"), "{err}");
    }

    #[test]
    fn closing_an_unused_session_is_clean() {
        let report =
            AgentSession::new(MockLlm::default(), ToolRegistry::standard(), test_ctx(8)).close();
        assert_eq!(report.turns, 0);
        assert!(report.library.is_empty());
        assert!(report.summary.contains("before any turn"));
    }
}
