//! Documents and experience (paper §3.1, "Learning from Documents and
//! Experience").
//!
//! The knowledge base stores per-(style, method) extension statistics —
//! the data behind the paper's Figure 10 — plus free-text experiences.
//! The agent consults it through the `get_documentation` tool when a
//! requirement leaves the extension method open; "out-painting typically
//! yields better legality, while in-painting excels in diversity" is not
//! hard-coded anywhere: it emerges from the recorded statistics.

use cp_extend::ExtensionMethod;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Running statistics for one (style, method) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MethodStats {
    /// Extension attempts recorded.
    pub attempts: usize,
    /// How many legalized cleanly.
    pub legal: usize,
    /// Sum of observed library diversities (for averaging).
    pub diversity_sum: f64,
    /// Number of diversity observations.
    pub diversity_count: usize,
}

impl MethodStats {
    /// Observed legality ratio (0 when nothing recorded).
    #[must_use]
    pub fn legality(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.legal as f64 / self.attempts as f64
        }
    }

    /// Mean observed diversity (0 when nothing recorded).
    #[must_use]
    pub fn mean_diversity(&self) -> f64 {
        if self.diversity_count == 0 {
            0.0
        } else {
            self.diversity_sum / self.diversity_count as f64
        }
    }
}

/// The agent's documents-and-experience store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    stats: HashMap<(u32, String), MethodStats>,
    experiences: Vec<String>,
}

impl KnowledgeBase {
    /// Empty knowledge base.
    #[must_use]
    pub fn new() -> KnowledgeBase {
        KnowledgeBase::default()
    }

    /// Records the outcome of extension attempts.
    pub fn record_extension(
        &mut self,
        style: u32,
        method: ExtensionMethod,
        attempts: usize,
        legal: usize,
    ) {
        let entry = self
            .stats
            .entry((style, method.name().to_owned()))
            .or_default();
        entry.attempts += attempts;
        entry.legal += legal;
    }

    /// Records an observed library diversity for a (style, method).
    pub fn record_diversity(&mut self, style: u32, method: ExtensionMethod, diversity: f64) {
        let entry = self
            .stats
            .entry((style, method.name().to_owned()))
            .or_default();
        entry.diversity_sum += diversity;
        entry.diversity_count += 1;
    }

    /// Statistics for a (style, method), if any were recorded.
    #[must_use]
    pub fn stats(&self, style: u32, method: ExtensionMethod) -> Option<&MethodStats> {
        self.stats.get(&(style, method.name().to_owned()))
    }

    /// Recommends an extension method for a style: the method with the
    /// best observed legality; ties and absent data fall back to
    /// out-painting (the documented default).
    #[must_use]
    pub fn recommend(&self, style: u32) -> ExtensionMethod {
        let out = self
            .stats(style, ExtensionMethod::OutPainting)
            .map(MethodStats::legality);
        let inp = self
            .stats(style, ExtensionMethod::InPainting)
            .map(MethodStats::legality);
        match (out, inp) {
            (Some(o), Some(i)) if i > o => ExtensionMethod::InPainting,
            _ => ExtensionMethod::OutPainting,
        }
    }

    /// Appends a free-text experience note.
    pub fn add_experience(&mut self, text: impl Into<String>) {
        self.experiences.push(text.into());
    }

    /// Recorded experience notes, oldest first.
    #[must_use]
    pub fn experiences(&self) -> &[String] {
        &self.experiences
    }

    /// Renders the documentation section of the system prompt.
    #[must_use]
    pub fn render_documents(&self) -> String {
        let mut out = String::from("Extension-method statistics (legality / mean diversity):\n");
        let mut keys: Vec<_> = self.stats.keys().collect();
        keys.sort();
        if keys.is_empty() {
            out.push_str("  (no recorded statistics yet; default to Out-Painting)\n");
        }
        for key in keys {
            let s = &self.stats[key];
            out.push_str(&format!(
                "  style {} / {}: legality {:.1}%, diversity {:.3} ({} attempts)\n",
                key.0,
                key.1,
                s.legality() * 100.0,
                s.mean_diversity(),
                s.attempts
            ));
        }
        if !self.experiences.is_empty() {
            out.push_str("Recorded experiences:\n");
            for e in &self.experiences {
                out.push_str("  - ");
                out.push_str(e);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_defaults_to_out_painting() {
        let kb = KnowledgeBase::new();
        assert_eq!(kb.recommend(0), ExtensionMethod::OutPainting);
    }

    #[test]
    fn recommendation_follows_recorded_legality() {
        let mut kb = KnowledgeBase::new();
        kb.record_extension(0, ExtensionMethod::OutPainting, 100, 40);
        kb.record_extension(0, ExtensionMethod::InPainting, 100, 80);
        assert_eq!(kb.recommend(0), ExtensionMethod::InPainting);
        // Other styles are unaffected.
        assert_eq!(kb.recommend(1), ExtensionMethod::OutPainting);
    }

    #[test]
    fn stats_accumulate() {
        let mut kb = KnowledgeBase::new();
        kb.record_extension(0, ExtensionMethod::OutPainting, 10, 9);
        kb.record_extension(0, ExtensionMethod::OutPainting, 10, 7);
        let s = kb.stats(0, ExtensionMethod::OutPainting).expect("recorded");
        assert_eq!(s.attempts, 20);
        assert_eq!(s.legal, 16);
        assert!((s.legality() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn documents_render_mentions_stats_and_experience() {
        let mut kb = KnowledgeBase::new();
        kb.record_extension(1, ExtensionMethod::OutPainting, 5, 5);
        kb.record_diversity(1, ExtensionMethod::OutPainting, 10.5);
        kb.add_experience("legalization of 500x500 Layer-10001 often needs modification");
        let doc = kb.render_documents();
        assert!(doc.contains("style 1 / Out"));
        assert!(doc.contains("100.0%"));
        assert!(doc.contains("often needs modification"));
    }
}
