//! The pattern-generation tool registry (paper §3.1, "Tool Function
//! Learning and Application").
//!
//! The LLM agent never sees raw topology matrices — they can exceed any
//! token budget. Tools operate on a pattern *store* keyed by integer ids
//! and exchange only JSON metadata: ids, sizes, styles, failure regions.

use crate::session::SnapshotError;
use crate::KnowledgeBase;
use cp_dataset::Style;
use cp_diffusion::{Mask, PatternSampler};
use cp_extend::{extend, ExtensionMethod};
use cp_legalize::Legalizer;
use cp_squish::{Region, SquishPattern, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::HashMap;

/// A tool-call failure (reported back to the agent as an observation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolError {
    message: String,
}

impl ToolError {
    /// Creates an error with a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> ToolError {
        ToolError {
            message: message.into(),
        }
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ToolError {}

/// A stored working topology with its style and (optional) legalized
/// geometry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredPattern {
    /// The working topology.
    pub topology: Topology,
    /// Style condition it was generated under.
    pub style: Option<u32>,
    /// Legalized squish pattern, once `legalize` succeeded.
    pub legal: Option<SquishPattern>,
    /// Number of failed legalization attempts so far.
    pub failures: usize,
    /// Grid region of the most recent failure, if any.
    pub last_failure_region: Option<Region>,
}

/// Mutable state shared by all tools: the generative back-end, the
/// legalizer, the pattern store, the knowledge base and the RNG.
pub struct ToolContext {
    sampler: Box<dyn PatternSampler>,
    legalizer: Legalizer,
    store: HashMap<u64, StoredPattern>,
    library: Vec<SquishPattern>,
    knowledge: KnowledgeBase,
    rng: ChaCha8Rng,
    next_id: u64,
}

impl std::fmt::Debug for ToolContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolContext")
            .field("stored", &self.store.len())
            .field("library", &self.library.len())
            .finish_non_exhaustive()
    }
}

impl ToolContext {
    /// Assembles a context from a back-end sampler and a legalizer.
    #[must_use]
    pub fn new(
        sampler: Box<dyn PatternSampler>,
        legalizer: Legalizer,
        knowledge: KnowledgeBase,
        seed: u64,
    ) -> ToolContext {
        ToolContext {
            sampler,
            legalizer,
            store: HashMap::new(),
            library: Vec::new(),
            knowledge,
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    /// The model's native window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.sampler.window()
    }

    /// Patterns accumulated in the final library.
    #[must_use]
    pub fn library(&self) -> &[SquishPattern] {
        &self.library
    }

    /// Consumes the context, returning the library.
    #[must_use]
    pub fn into_library(self) -> Vec<SquishPattern> {
        self.library
    }

    /// The knowledge base.
    #[must_use]
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// Mutable knowledge base access (for seeding Figure-10 statistics).
    pub fn knowledge_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.knowledge
    }

    /// Looks up a stored pattern.
    #[must_use]
    pub fn stored(&self, id: u64) -> Option<&StoredPattern> {
        self.store.get(&id)
    }

    /// Number of stored working patterns.
    #[must_use]
    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    fn insert(&mut self, pattern: StoredPattern) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.store.insert(id, pattern);
        id
    }

    /// Captures every piece of mutable tool state — the working store,
    /// the library, the knowledge base, the RNG position and the id
    /// counter — as a serializable [`ContextSnapshot`]. The sampler and
    /// legalizer are *dependencies*, not state: they are re-injected by
    /// [`ToolContext::restore`], so a snapshot stays small and a
    /// restored context behaves byte-identically on the same back-end.
    #[must_use]
    pub fn snapshot(&self) -> ContextSnapshot {
        let mut store: Vec<(u64, StoredPattern)> = self
            .store
            .iter()
            .map(|(id, pattern)| (*id, pattern.clone()))
            .collect();
        // Sorted entries make the serialized form deterministic (the
        // map's iteration order is not).
        store.sort_by_key(|(id, _)| *id);
        ContextSnapshot {
            store,
            library: self.library.clone(),
            knowledge: self.knowledge.clone(),
            rng: self.rng.state_words(),
            next_id: self.next_id,
        }
    }

    /// Rebuilds a context from a [`ContextSnapshot`] plus freshly
    /// injected dependencies (the generative sampler and the
    /// legalizer).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the RNG state words are
    /// corrupt (wrong count or out-of-range cursor).
    pub fn restore(
        snapshot: ContextSnapshot,
        sampler: Box<dyn PatternSampler>,
        legalizer: Legalizer,
    ) -> Result<ToolContext, SnapshotError> {
        let rng = ChaCha8Rng::from_state_words(&snapshot.rng).ok_or_else(|| {
            SnapshotError::new(format!(
                "corrupt RNG state: {} words (want {})",
                snapshot.rng.len(),
                rand_chacha::STATE_WORDS
            ))
        })?;
        Ok(ToolContext {
            sampler,
            legalizer,
            store: snapshot.store.into_iter().collect(),
            library: snapshot.library,
            knowledge: snapshot.knowledge,
            rng,
            next_id: snapshot.next_id,
        })
    }
}

/// The serializable mutable state of a [`ToolContext`] (see
/// [`ToolContext::snapshot`]). Store entries are sorted by id so the
/// serialized form is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSnapshot {
    /// The working pattern store as sorted `(id, pattern)` entries.
    pub store: Vec<(u64, StoredPattern)>,
    /// The delivered library so far.
    pub library: Vec<SquishPattern>,
    /// The documents-and-experience store.
    pub knowledge: KnowledgeBase,
    /// The RNG state words ([`ChaCha8Rng::state_words`]).
    pub rng: Vec<u32>,
    /// The next working-pattern id to hand out.
    pub next_id: u64,
}

/// A callable tool. `Send + Sync` is a supertrait because registries
/// live inside long-lived chat sessions that migrate between engine
/// worker threads; tools are stateless (all state is in the
/// [`ToolContext`]), so the bound is free.
pub trait Tool: Send + Sync {
    /// Registered name (what the agent writes after `Action:`).
    fn name(&self) -> &'static str;

    /// One-paragraph usage description for the system prompt.
    fn description(&self) -> &'static str;

    /// Executes the tool.
    ///
    /// # Errors
    ///
    /// Returns a [`ToolError`] on malformed arguments or unknown ids.
    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError>;
}

/// The default tool set of ChatPattern.
pub struct ToolRegistry {
    tools: Vec<Box<dyn Tool>>,
}

impl std::fmt::Debug for ToolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolRegistry")
            .field("tools", &self.names())
            .finish()
    }
}

impl Default for ToolRegistry {
    fn default() -> ToolRegistry {
        ToolRegistry::standard()
    }
}

impl ToolRegistry {
    /// The standard tool set (generation, extension, legalization,
    /// modification, dropping, library save, documentation, experience).
    #[must_use]
    pub fn standard() -> ToolRegistry {
        ToolRegistry {
            tools: vec![
                Box::new(TopologyGen),
                Box::new(TopologyExtension),
                Box::new(LegalizeTool),
                Box::new(TopologyModification),
                Box::new(DropPatterns),
                Box::new(SaveLibrary),
                Box::new(GetDocumentation),
                Box::new(ReportExperience),
            ],
        }
    }

    /// Registered tool names.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.tools.iter().map(|t| t.name()).collect()
    }

    /// Looks a tool up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn Tool> {
        self.tools.iter().find(|t| t.name() == name).map(|b| &**b)
    }

    /// Dispatches one tool call: the single fallible entry point the
    /// agent loop and the service API route every invocation through.
    ///
    /// # Errors
    ///
    /// Returns a [`ToolError`] for unknown tool names and for failures
    /// inside the tool itself.
    pub fn dispatch(
        &self,
        ctx: &mut ToolContext,
        name: &str,
        args: &Value,
    ) -> Result<Value, ToolError> {
        self.get(name)
            .ok_or_else(|| ToolError::new(format!("unknown tool '{name}'")))?
            .call(ctx, args)
    }

    /// Renders the `(functions and descriptions)` block of the system
    /// prompt (#2 Tool Learning in Figure 4).
    #[must_use]
    pub fn render_descriptions(&self) -> String {
        self.tools
            .iter()
            .map(|t| format!("- {}: {}", t.name(), t.description()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// ---------------------------------------------------------------------
// Argument helpers
// ---------------------------------------------------------------------

fn arg_usize(args: &Value, key: &str) -> Result<usize, ToolError> {
    args.get(key)
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| ToolError::new(format!("missing or invalid '{key}'")))
}

fn arg_pair(args: &Value, key: &str) -> Result<(usize, usize), ToolError> {
    let arr = args
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| ToolError::new(format!("missing or invalid '{key}'")))?;
    if arr.len() != 2 {
        return Err(ToolError::new(format!("'{key}' must have two entries")));
    }
    let a = arr[0]
        .as_u64()
        .ok_or_else(|| ToolError::new(format!("'{key}[0]' must be a number")))?;
    let b = arr[1]
        .as_u64()
        .ok_or_else(|| ToolError::new(format!("'{key}[1]' must be a number")))?;
    Ok((a as usize, b as usize))
}

fn arg_ids(args: &Value, key: &str) -> Result<Vec<u64>, ToolError> {
    args.get(key)
        .and_then(Value::as_array)
        .map(|arr| arr.iter().filter_map(Value::as_u64).collect())
        .ok_or_else(|| ToolError::new(format!("missing or invalid '{key}'")))
}

fn arg_style(args: &Value, key: &str) -> Option<u32> {
    args.get(key)
        .and_then(Value::as_str)
        .and_then(Style::from_name)
        .map(Style::id)
}

fn region_to_json(region: Region) -> Value {
    json!({
        "upper": region.row0(),
        "left": region.col0(),
        "bottom": region.row1(),
        "right": region.col1(),
    })
}

// ---------------------------------------------------------------------
// Tools
// ---------------------------------------------------------------------

/// Random Topology Generation (paper tool 1).
struct TopologyGen;

impl Tool for TopologyGen {
    fn name(&self) -> &'static str {
        "topology_gen"
    }

    fn description(&self) -> &'static str {
        "Generate random topology matrices subject to a style condition. \
         Args: {\"count\": int, \"style\": \"Layer-10001\", \"size\": [rows, cols] (optional)}. \
         The model output size is capped at its native window; use topology_extension \
         for larger targets. Returns {\"ids\": [...], \"size\": [r, c], \"window\": L}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let count = arg_usize(args, "count")?;
        let style = arg_style(args, "style");
        let window = ctx.window();
        let (rows, cols) = match arg_pair(args, "size") {
            Ok((r, c)) => (r.min(window), c.min(window)),
            Err(_) => (window, window),
        };
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let topology = ctx.sampler.generate(rows, cols, style, &mut ctx.rng);
            ids.push(ctx.insert(StoredPattern {
                topology,
                style,
                legal: None,
                failures: 0,
                last_failure_region: None,
            }));
        }
        Ok(json!({"ids": ids, "size": [rows, cols], "window": window}))
    }
}

/// Topology Extension (paper supplementary tool 1).
struct TopologyExtension;

impl Tool for TopologyExtension {
    fn name(&self) -> &'static str {
        "topology_extension"
    }

    fn description(&self) -> &'static str {
        "Extend stored topologies to a larger size via In-Painting or Out-Painting. \
         Args: {\"ids\": [...], \"target\": [rows, cols], \"method\": \"Out\"|\"In\"}. \
         Returns {\"ids\": [...], \"size\": [r, c], \"method\": \"Out\"}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let ids = arg_ids(args, "ids")?;
        let (rows, cols) = arg_pair(args, "target")?;
        let method = args
            .get("method")
            .and_then(Value::as_str)
            .and_then(ExtensionMethod::from_name)
            .unwrap_or_default();
        for &id in &ids {
            let entry = ctx
                .store
                .get(&id)
                .ok_or_else(|| ToolError::new(format!("unknown pattern id {id}")))?;
            let style = entry.style;
            let seed = entry.topology.clone();
            if seed.rows() > rows || seed.cols() > cols {
                return Err(ToolError::new(format!(
                    "pattern {id} is already larger than the target"
                )));
            }
            let extended = extend(
                &*ctx.sampler,
                &seed,
                rows,
                cols,
                method,
                style,
                &mut ctx.rng,
            );
            let entry = ctx
                .store
                .get_mut(&id)
                .ok_or_else(|| ToolError::new(format!("pattern id {id} vanished mid-call")))?;
            entry.topology = extended;
            entry.legal = None;
        }
        Ok(json!({"ids": ids, "size": [rows, cols], "method": method.name()}))
    }
}

/// Topology Legalization (paper tool 2).
struct LegalizeTool;

impl Tool for LegalizeTool {
    fn name(&self) -> &'static str {
        "legalize"
    }

    fn description(&self) -> &'static str {
        "Legalize stored topologies into DRC-clean physical patterns. \
         Args: {\"ids\": [...], \"physical\": [width_nm, height_nm]}. Returns \
         {\"legal\": [...], \"failed\": [{\"id\", \"region\": {upper,left,bottom,right}, \"log\"}]} — \
         the failure region locates the unreasonable area for topology_modification."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let ids = arg_ids(args, "ids")?;
        let (width, height) = arg_pair(args, "physical")?;
        let mut legal = Vec::new();
        let mut failed = Vec::new();
        for &id in &ids {
            let entry = ctx
                .store
                .get(&id)
                .ok_or_else(|| ToolError::new(format!("unknown pattern id {id}")))?;
            let topology = entry.topology.clone();
            let outcome =
                ctx.legalizer
                    .legalize(&topology, width as i64, height as i64, &mut ctx.rng);
            let entry = ctx
                .store
                .get_mut(&id)
                .ok_or_else(|| ToolError::new(format!("pattern id {id} vanished mid-call")))?;
            match outcome {
                Ok(pattern) => {
                    entry.legal = Some(pattern);
                    legal.push(id);
                }
                Err(failure) => {
                    entry.failures += 1;
                    entry.last_failure_region = Some(failure.region);
                    failed.push(json!({
                        "id": id,
                        "region": region_to_json(failure.region),
                        "failures": entry.failures,
                        "log": failure.to_string(),
                    }));
                }
            }
        }
        Ok(json!({"legal": legal, "failed": failed}))
    }
}

/// Topology Modification (paper supplementary tool 2; §4.2 argument
/// format: upper/left/bottom/right + style + seed).
struct TopologyModification;

impl Tool for TopologyModification {
    fn name(&self) -> &'static str {
        "topology_modification"
    }

    fn description(&self) -> &'static str {
        "Regenerate a rectangular region of a stored topology in-place, \
         conditioned on its surroundings — a time-efficient alternative to \
         discarding failed topologies. Args: {\"id\": int, \"upper\": int, \"left\": int, \
         \"bottom\": int, \"right\": int, \"style\": \"Layer-10001\", \"seed\": int (optional)}. \
         Returns {\"id\": int, \"modified_cells\": int}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let id = args
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| ToolError::new("missing or invalid 'id'"))?;
        let upper = arg_usize(args, "upper")?;
        let left = arg_usize(args, "left")?;
        let bottom = arg_usize(args, "bottom")?;
        let right = arg_usize(args, "right")?;
        let style = arg_style(args, "style");
        if let Some(seed) = args.get("seed").and_then(Value::as_u64) {
            ctx.rng = ChaCha8Rng::seed_from_u64(seed);
        }
        let entry = ctx
            .store
            .get(&id)
            .ok_or_else(|| ToolError::new(format!("unknown pattern id {id}")))?;
        let topology = entry.topology.clone();
        let style = style.or(entry.style);
        let (rows, cols) = topology.shape();
        if bottom > rows || right > cols || upper >= bottom || left >= right {
            return Err(ToolError::new("region out of bounds"));
        }
        let region = Region::new(upper, left, bottom, right);
        // Working space: a window of native size containing the region
        // (clamped to the matrix), so memory stays bounded.
        let l = ctx.window().max(region.height()).max(region.width());
        let win_r0 = upper
            .saturating_sub((l - region.height()) / 2)
            .min(rows.saturating_sub(l));
        let win_c0 = left
            .saturating_sub((l - region.width()) / 2)
            .min(cols.saturating_sub(l));
        let win = Region::new(
            win_r0,
            win_c0,
            (win_r0 + l).min(rows),
            (win_c0 + l).min(cols),
        );
        let known = topology.window(win);
        let local = Region::new(
            upper - win.row0(),
            left - win.col0(),
            bottom - win.row0(),
            right - win.col0(),
        );
        let mask = Mask::keep_outside(known.rows(), known.cols(), local);
        let repainted = ctx.sampler.modify(&known, &mask, style, &mut ctx.rng);
        let entry = ctx
            .store
            .get_mut(&id)
            .ok_or_else(|| ToolError::new(format!("pattern id {id} vanished mid-call")))?;
        entry.topology.paste(&repainted, win.row0(), win.col0());
        entry.legal = None;
        Ok(json!({"id": id, "modified_cells": region.cell_count()}))
    }
}

/// Topology selection: drop failed cases.
struct DropPatterns;

impl Tool for DropPatterns {
    fn name(&self) -> &'static str {
        "drop_patterns"
    }

    fn description(&self) -> &'static str {
        "Remove stored topologies (topology selection / dropping failed cases). \
         Args: {\"ids\": [...]}. Returns {\"dropped\": int}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let ids = arg_ids(args, "ids")?;
        let mut dropped = 0;
        for id in ids {
            if ctx.store.remove(&id).is_some() {
                dropped += 1;
            }
        }
        Ok(json!({"dropped": dropped}))
    }
}

/// Move legalized patterns into the final library.
struct SaveLibrary;

impl Tool for SaveLibrary {
    fn name(&self) -> &'static str {
        "save_library"
    }

    fn description(&self) -> &'static str {
        "Move legalized patterns into the output library and release their \
         working storage. Args: {\"ids\": [...]}. Returns {\"saved\": int, \"library_total\": int}. \
         Ids without a successful legalize call are skipped."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let ids = arg_ids(args, "ids")?;
        let mut saved = 0;
        for id in ids {
            if let std::collections::hash_map::Entry::Occupied(entry) = ctx.store.entry(id) {
                if entry.get().legal.is_some() {
                    if let Some(pattern) = entry.remove().legal {
                        ctx.library.push(pattern);
                        saved += 1;
                    }
                }
            }
        }
        Ok(json!({"saved": saved, "library_total": ctx.library.len()}))
    }
}

/// Consult the documents / experience store.
struct GetDocumentation;

impl Tool for GetDocumentation {
    fn name(&self) -> &'static str {
        "get_documentation"
    }

    fn description(&self) -> &'static str {
        "Consult the working documents: extension-method statistics and \
         recorded experiences. Args: {\"style\": \"Layer-10001\"}. Returns \
         {\"recommended_method\": \"Out\"|\"In\", \"documents\": text}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let style =
            arg_style(args, "style").ok_or_else(|| ToolError::new("missing or invalid 'style'"))?;
        let method = ctx.knowledge.recommend(style);
        Ok(json!({
            "recommended_method": method.name(),
            "documents": ctx.knowledge.render_documents(),
        }))
    }
}

/// Record an experience note for future sessions.
struct ReportExperience;

impl Tool for ReportExperience {
    fn name(&self) -> &'static str {
        "report_experience"
    }

    fn description(&self) -> &'static str {
        "Append a lesson learned to the experience documents (work-history \
         documentation). Args: {\"text\": string}. Returns {\"ok\": true}."
    }

    fn call(&self, ctx: &mut ToolContext, args: &Value) -> Result<Value, ToolError> {
        let text = args
            .get("text")
            .and_then(Value::as_str)
            .ok_or_else(|| ToolError::new("missing 'text'"))?;
        ctx.knowledge.add_experience(text);
        Ok(json!({"ok": true}))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule};
    use cp_drc::DesignRules;

    fn test_ctx() -> ToolContext {
        let data: Vec<Topology> = (0..6)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 8 < 4))
            .collect();
        let denoiser = MrfDenoiser::fit(&[(0, &data), (1, &data)], 1.0);
        let model = DiffusionModel::new(NoiseSchedule::scaled_default(8), denoiser, 16);
        ToolContext::new(
            Box::new(model),
            Legalizer::new(DesignRules::new(20, 20, 400)),
            KnowledgeBase::new(),
            42,
        )
    }

    fn call(ctx: &mut ToolContext, name: &str, args: Value) -> Value {
        ToolRegistry::standard()
            .get(name)
            .expect("tool exists")
            .call(ctx, &args)
            .expect("tool call succeeds")
    }

    #[test]
    fn registry_has_all_paper_tools() {
        let names = ToolRegistry::standard().names();
        for required in [
            "topology_gen",
            "topology_extension",
            "legalize",
            "topology_modification",
            "drop_patterns",
            "save_library",
            "get_documentation",
            "report_experience",
        ] {
            assert!(names.contains(&required), "missing tool {required}");
        }
    }

    #[test]
    fn generation_stores_patterns_and_reports_window() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 3, "style": "Layer-10001"}),
        );
        assert_eq!(out["ids"].as_array().map(Vec::len), Some(3));
        assert_eq!(out["window"], 16);
        assert_eq!(ctx.stored_count(), 3);
    }

    #[test]
    fn oversized_generation_is_capped_at_window() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 1, "style": "Layer-10001", "size": [64, 64]}),
        );
        assert_eq!(out["size"], json!([16, 16]));
    }

    #[test]
    fn extension_grows_stored_topology() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 1, "style": "Layer-10001"}),
        );
        let id = out["ids"][0].as_u64().expect("id");
        let out = call(
            &mut ctx,
            "topology_extension",
            json!({"ids": [id], "target": [32, 32], "method": "Out"}),
        );
        assert_eq!(out["method"], "Out");
        assert_eq!(ctx.stored(id).expect("stored").topology.shape(), (32, 32));
    }

    #[test]
    fn legalize_reports_legal_and_failed_with_regions() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 2, "style": "Layer-10001"}),
        );
        let ids: Vec<u64> = out["ids"]
            .as_array()
            .expect("ids")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        // Generous frame: stripes legalize easily.
        let out = call(
            &mut ctx,
            "legalize",
            json!({"ids": ids, "physical": [2000, 2000]}),
        );
        let legal = out["legal"].as_array().expect("legal").len();
        let failed = out["failed"].as_array().expect("failed").len();
        assert_eq!(legal + failed, 2);
        for f in out["failed"].as_array().expect("failed") {
            assert!(f["region"]["bottom"].as_u64().is_some());
            assert!(f["log"].as_str().is_some());
        }
    }

    #[test]
    fn modification_changes_only_window_region_owner() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 1, "style": "Layer-10001"}),
        );
        let id = out["ids"][0].as_u64().expect("id");
        let before = ctx.stored(id).expect("stored").topology.clone();
        let out = call(
            &mut ctx,
            "topology_modification",
            json!({"id": id, "upper": 2, "left": 2, "bottom": 10, "right": 10,
                   "style": "Layer-10001", "seed": 42}),
        );
        assert_eq!(out["modified_cells"], 64);
        let after = &ctx.stored(id).expect("stored").topology;
        assert_eq!(after.shape(), before.shape());
    }

    #[test]
    fn save_library_moves_only_legalized() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 2, "style": "Layer-10001"}),
        );
        let ids: Vec<u64> = out["ids"]
            .as_array()
            .expect("ids")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        // Save before legalization: nothing moves.
        let out = call(&mut ctx, "save_library", json!({"ids": ids}));
        assert_eq!(out["saved"], 0);
        let _ = call(
            &mut ctx,
            "legalize",
            json!({"ids": ids, "physical": [2000, 2000]}),
        );
        let out = call(&mut ctx, "save_library", json!({"ids": ids}));
        assert_eq!(
            out["library_total"].as_u64().expect("total"),
            out["saved"].as_u64().expect("saved")
        );
    }

    #[test]
    fn drop_removes_from_store() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "topology_gen",
            json!({"count": 2, "style": "Layer-10001"}),
        );
        let ids: Vec<u64> = out["ids"]
            .as_array()
            .expect("ids")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        let out = call(&mut ctx, "drop_patterns", json!({"ids": ids}));
        assert_eq!(out["dropped"], 2);
        assert_eq!(ctx.stored_count(), 0);
    }

    #[test]
    fn documentation_tool_returns_recommendation() {
        let mut ctx = test_ctx();
        ctx.knowledge_mut()
            .record_extension(0, ExtensionMethod::InPainting, 10, 9);
        ctx.knowledge_mut()
            .record_extension(0, ExtensionMethod::OutPainting, 10, 3);
        let out = call(
            &mut ctx,
            "get_documentation",
            json!({"style": "Layer-10001"}),
        );
        assert_eq!(out["recommended_method"], "In");
        assert!(out["documents"]
            .as_str()
            .expect("docs")
            .contains("legality"));
    }

    #[test]
    fn experience_tool_appends_notes() {
        let mut ctx = test_ctx();
        let out = call(
            &mut ctx,
            "report_experience",
            json!({"text": "large dense patterns need modification"}),
        );
        assert_eq!(out["ok"], true);
        assert_eq!(ctx.knowledge().experiences().len(), 1);
    }

    #[test]
    fn unknown_id_errors() {
        let mut ctx = test_ctx();
        let err = ToolRegistry::standard()
            .get("legalize")
            .expect("tool")
            .call(&mut ctx, &json!({"ids": [99], "physical": [100, 100]}))
            .expect_err("should fail");
        assert!(err.message().contains("unknown pattern id"));
    }

    #[test]
    fn dispatch_routes_and_reports_unknown_tools() {
        let mut ctx = test_ctx();
        let registry = ToolRegistry::standard();
        let out = registry
            .dispatch(
                &mut ctx,
                "topology_gen",
                &json!({"count": 1, "style": "Layer-10001"}),
            )
            .expect("known tool dispatches");
        assert_eq!(out["ids"].as_array().map(Vec::len), Some(1));
        let err = registry
            .dispatch(&mut ctx, "no_such_tool", &json!({}))
            .expect_err("unknown tool errors");
        assert!(err.message().contains("unknown tool 'no_such_tool'"));
    }

    #[test]
    fn descriptions_render_for_prompt() {
        let text = ToolRegistry::standard().render_descriptions();
        assert!(text.contains("topology_gen"));
        assert!(text.contains("topology_modification"));
    }
}
