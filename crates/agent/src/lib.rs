//! The expert LLM agent front-end of ChatPattern (paper §3.1, Figure 4).
//!
//! The agent turns free-form natural-language requests into pattern
//! libraries by:
//!
//! 1. **Requirement auto-formatting** ([`requirement`]) — translating the
//!    request into structured requirement lists (one per sub-task) with a
//!    Basic part (topology size, physical size, style, count) and an
//!    Advanced part (extension method, drop-allowed, time limitation);
//! 2. **Task planning and execution** ([`session`], [`policy`]) — a
//!    ReAct-style Thought/Action/Action-Input/Observation loop over the
//!    pattern-generation tools, resumable across user turns
//!    ([`AgentSession::turn`]): the working library, the requirement
//!    context and the transcript persist, so follow-up utterances
//!    refine the previous turn's results;
//! 3. **Tool function learning** ([`tools`]) — a registry of JSON-argument
//!    tools (`topology_gen`, `topology_extension`, `legalize`,
//!    `topology_modification`, …) whose descriptions are assembled into
//!    the system prompt ([`prompt`]);
//! 4. **Learning from documents and experience** ([`knowledge`]) — the
//!    statistics store (Figure 10 data) that informs extension-method
//!    selection, plus recorded experiences;
//! 5. **Unseen mistake-processing** — on legalization failure the policy
//!    reads the explainable failure region from the log and either drops
//!    the topology or repairs it with `topology_modification` (§4.2).
//!
//! The [`LanguageModel`] trait decouples the loop
//! from the model: [`ExpertPolicy`] is the
//! deterministic expert stand-in used in this reproduction (see
//! DESIGN.md); any external LLM can be plugged in behind the same trait.

pub mod knowledge;
pub mod llm;
pub mod policy;
pub mod prompt;
pub mod requirement;
pub mod session;
pub mod tools;

pub use knowledge::KnowledgeBase;
pub use llm::{AgentAction, AgentStep, LanguageModel, Message, MockLlm, Role};
pub use policy::{ExpertPolicy, PolicySnapshot};
pub use requirement::{
    auto_format, auto_format_with_context, try_auto_format, Requirement, RequirementError,
};
pub use session::{
    render_transcript, AgentSession, AgentSnapshot, SessionReport, SnapshotError, TurnReport,
};
pub use tools::{ContextSnapshot, ToolContext, ToolError, ToolRegistry};
