//! Requirement auto-formatting (paper §3.1 and §4.2).
//!
//! Translates free-form natural-language requests into the paper's
//! standard requirement list: one [`Requirement`] per sub-task, each with
//! a Basic part (topology size, physical size, style, count) and an
//! Advanced part (extension method, drop-allowed, time limitation).
//! Requests naming several topology sizes or styles are factorized into
//! one sub-task per combination, exactly like the running example of
//! Figure 4 (100k patterns over sizes {200², 500²} → two 50k sub-tasks).

use cp_dataset::Style;
use cp_extend::ExtensionMethod;
use serde::{Deserialize, Serialize};

/// Why a natural-language request could not be turned into a usable
/// requirement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequirementError {
    message: String,
}

impl RequirementError {
    /// Creates an error with a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> RequirementError {
        RequirementError {
            message: message.into(),
        }
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for RequirementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "requirement parsing failed: {}", self.message)
    }
}

impl std::error::Error for RequirementError {}

/// One structured sub-task of a user request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requirement {
    /// Topology matrix size `(rows, cols)`.
    pub topology_size: (usize, usize),
    /// Physical pattern size in nm `(width, height)`.
    pub physical_size_nm: (i64, i64),
    /// Pattern style (the diffusion condition).
    pub style: Style,
    /// Number of legal patterns to deliver.
    pub count: usize,
    /// Requested extension method (`None` = let the agent choose from
    /// its experience documents).
    pub extension_method: Option<ExtensionMethod>,
    /// Whether failed topologies may simply be dropped.
    pub drop_allowed: bool,
    /// Optional free-text time limitation.
    pub time_limit: Option<String>,
}

impl Requirement {
    /// A reasonable default sub-task (128² topology, 2048 nm frame,
    /// Layer-10001, 10 patterns).
    #[must_use]
    pub fn default_task() -> Requirement {
        Requirement {
            topology_size: (128, 128),
            physical_size_nm: (2048, 2048),
            style: Style::Layer10001,
            count: 10,
            extension_method: None,
            drop_allowed: true,
            time_limit: None,
        }
    }

    /// Renders the paper's requirement-list template for sub-task `index`
    /// (1-based).
    #[must_use]
    pub fn render(&self, index: usize) -> String {
        format!(
            "# Requirement - subtask {index}\n\
             ## Basic Part: Topology Size: [{}, {}], Physical Size: [{}, {}] nm, \
             Style: {}, Count: {},\n\
             ## Advanced Part: Extension Method: {} (Default: Out), \
             Drop Allowed: {} (Default: True), Time Limitation: {} (Default: None).",
            self.topology_size.0,
            self.topology_size.1,
            self.physical_size_nm.0,
            self.physical_size_nm.1,
            self.style,
            self.count,
            self.extension_method.map_or("Out", ExtensionMethod::name),
            if self.drop_allowed { "True" } else { "False" },
            self.time_limit.as_deref().unwrap_or("None"),
        )
    }
}

/// Parses a natural-language request into requirement lists.
///
/// # Example
///
/// ```
/// use cp_agent::auto_format;
/// let reqs = auto_format(
///     "Generate a layout pattern library, there are 100k layout patterns \
///      in total. The physical size fixed as 1.5um * 1.5um. The topology \
///      size should be chosen from 200*200 and 500*500. They should be in \
///      style of 'Layer-10001'.",
/// );
/// assert_eq!(reqs.len(), 2);
/// assert_eq!(reqs[0].count, 50_000);
/// assert_eq!(reqs[0].topology_size, (200, 200));
/// assert_eq!(reqs[1].topology_size, (500, 500));
/// assert_eq!(reqs[0].physical_size_nm, (1500, 1500));
/// ```
#[must_use]
pub fn auto_format(request: &str) -> Vec<Requirement> {
    auto_format_with_context(request, None)
}

/// [`auto_format`] for a *follow-up* turn in a multi-turn session.
///
/// Fields the utterance does not mention inherit from `context` — the
/// previous turn's requirement — instead of the global defaults, so a
/// short refinement operates on the previous turn's results:
///
/// * "now make them denser" keeps the size, count and frame but shifts
///   the style to the dense layer;
/// * "extend the last one to 3x" scales the previous topology size by
///   the factor while keeping everything else;
/// * an unqualified "2 more patterns" keeps size, style and frame and
///   only replaces the count.
///
/// With `context = None` this is exactly [`auto_format`].
#[must_use]
pub fn auto_format_with_context(request: &str, context: Option<&Requirement>) -> Vec<Requirement> {
    let tokens = tokenize(request);
    let sizes = find_sizes(&tokens);
    let topo_sizes: Vec<(usize, usize)> = sizes
        .iter()
        .filter(|s| !s.physical)
        .map(|s| (s.a as usize, s.b as usize))
        .collect();
    let physical: Vec<(i64, i64)> = sizes
        .iter()
        .filter(|s| s.physical)
        .map(|s| (s.a, s.b))
        .collect();
    let styles = find_styles(&tokens);
    let (count, per_each) = find_count(&tokens);
    let method = find_method(request).or_else(|| context.and_then(|c| c.extension_method));
    let drop_mentioned = tokens
        .iter()
        .any(|t| matches!(t, Token::Word(w) if w.starts_with("drop")));
    let drop_allowed = match context {
        Some(c) if !drop_mentioned => c.drop_allowed,
        _ => find_drop_allowed(&tokens),
    };
    let time_limit =
        find_time_limit(&tokens).or_else(|| context.and_then(|c| c.time_limit.clone()));

    let topo_sizes = if topo_sizes.is_empty() {
        match context {
            Some(c) => {
                let (r, cols) = c.topology_size;
                let factor = find_scale_factor(&tokens).unwrap_or(1);
                vec![(r * factor, cols * factor)]
            }
            None => vec![(128, 128)],
        }
    } else {
        topo_sizes
    };
    let styles = if styles.is_empty() {
        match (find_density_shift(&tokens), context) {
            (Some(style), _) => vec![style],
            (None, Some(c)) => vec![c.style],
            (None, None) => vec![Style::Layer10001],
        }
    } else {
        styles
    };
    let physical0 = physical
        .first()
        .copied()
        .or_else(|| context.map(|c| c.physical_size_nm))
        .unwrap_or((2048, 2048));

    let n_subtasks = topo_sizes.len() * styles.len();
    // A follow-up without an explicit count repeats the previous
    // turn's per-task count.
    let (total, per_each) = match (count, context) {
        (Some(total), _) => (total, per_each),
        (None, Some(c)) => (c.count, true),
        (None, None) => (10 * n_subtasks, per_each),
    };
    let per_task = if per_each { total } else { total / n_subtasks };
    let remainder = if per_each { 0 } else { total % n_subtasks };

    let mut out = Vec::with_capacity(n_subtasks);
    for style in &styles {
        for (i, topo) in topo_sizes.iter().enumerate() {
            let extra = usize::from(out.is_empty() && remainder > 0) * remainder;
            let _ = i;
            out.push(Requirement {
                topology_size: *topo,
                physical_size_nm: physical0,
                style: *style,
                count: per_task + extra,
                extension_method: method,
                drop_allowed,
                time_limit: time_limit.clone(),
            });
        }
    }
    out
}

/// Fallible requirement parsing: like [`auto_format`] but rejects
/// requests that cannot produce a meaningful plan instead of silently
/// falling back to defaults.
///
/// # Errors
///
/// Returns a [`RequirementError`] when the request is empty or when the
/// requested total splits to zero patterns for some sub-task.
pub fn try_auto_format(request: &str) -> Result<Vec<Requirement>, RequirementError> {
    if request.trim().is_empty() {
        return Err(RequirementError::new(
            "the request is empty; describe the pattern library to generate",
        ));
    }
    let requirements = auto_format(request);
    if let Some(bad) = requirements.iter().find(|r| r.count == 0) {
        return Err(RequirementError::new(format!(
            "the requested total splits to zero patterns for the {}x{} sub-task; \
             raise the count or drop a topology size",
            bad.topology_size.0, bad.topology_size.1,
        )));
    }
    Ok(requirements)
}

#[derive(Debug, Clone, Copy)]
struct SizePair {
    a: i64,
    b: i64,
    physical: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Number { value: f64, unit: Unit },
    Star,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    None,
    Um,
    Nm,
    Kilo,
    Mega,
}

fn tokenize(text: &str) -> Vec<Token> {
    // Normalize separators: unify ×, insert spaces around '*', split
    // digit-x-digit, strip thousands separators.
    let lower = text.to_ascii_lowercase().replace('×', "*");
    let chars: Vec<char> = lower.chars().collect();
    let mut normalized = String::with_capacity(lower.len() + 16);
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '*' => normalized.push_str(" * "),
            'x' if i > 0
                && i + 1 < chars.len()
                && chars[i - 1].is_ascii_digit()
                && chars[i + 1].is_ascii_digit() =>
            {
                normalized.push_str(" * ");
            }
            ',' if i > 0
                && i + 1 < chars.len()
                && chars[i - 1].is_ascii_digit()
                && chars[i + 1].is_ascii_digit() => {}
            c if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '\'' => {
                normalized.push(c);
            }
            _ => normalized.push(' '),
        }
    }
    normalized
        .split_whitespace()
        .map(|raw| {
            let w = raw.trim_matches(|c| c == '\'' || c == '.' || c == '-');
            if w == "*" || raw == "*" || w == "x" || w == "by" {
                return Token::Star;
            }
            parse_number(w).map_or_else(
                || Token::Word(w.to_owned()),
                |(value, unit)| Token::Number { value, unit },
            )
        })
        .collect()
}

fn parse_number(word: &str) -> Option<(f64, Unit)> {
    if word.is_empty() || !word.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    let digits_end = word
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(word.len());
    let (num, suffix) = word.split_at(digits_end);
    let value: f64 = num.parse().ok()?;
    let unit = match suffix {
        "" => Unit::None,
        "um" | "µm" => Unit::Um,
        "nm" => Unit::Nm,
        "k" => Unit::Kilo,
        "m" => Unit::Mega,
        _ => return None,
    };
    Some((value, unit))
}

/// Number in nanometres if the unit is physical.
fn to_nm(value: f64, unit: Unit) -> Option<i64> {
    match unit {
        Unit::Um => Some((value * 1000.0).round() as i64),
        Unit::Nm => Some(value.round() as i64),
        _ => None,
    }
}

fn scalar(value: f64, unit: Unit) -> i64 {
    match unit {
        Unit::Kilo => (value * 1e3).round() as i64,
        Unit::Mega => (value * 1e6).round() as i64,
        _ => value.round() as i64,
    }
}

fn find_sizes(tokens: &[Token]) -> Vec<SizePair> {
    let mut out = Vec::new();
    let mut last_keyword: Option<&str> = None;
    let mut i = 0;
    while i < tokens.len() {
        if let Token::Word(w) = &tokens[i] {
            if w == "physical" || w == "topology" {
                last_keyword = Some(if w == "physical" {
                    "physical"
                } else {
                    "topology"
                });
            }
        }
        if let (
            Some(Token::Number { value: a, unit: ua }),
            Some(Token::Star),
            Some(Token::Number { value: b, unit: ub }),
        ) = (tokens.get(i), tokens.get(i + 1), tokens.get(i + 2))
        {
            let has_physical_unit = to_nm(*a, *ua).is_some() || to_nm(*b, *ub).is_some();
            let physical = has_physical_unit || last_keyword == Some("physical");
            let (a, b) = if physical {
                (
                    to_nm(*a, *ua).unwrap_or_else(|| scalar(*a, *ua)),
                    to_nm(*b, *ub).unwrap_or_else(|| scalar(*b, *ub)),
                )
            } else {
                (scalar(*a, *ua), scalar(*b, *ub))
            };
            if a > 0 && b > 0 {
                out.push(SizePair { a, b, physical });
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

fn find_styles(tokens: &[Token]) -> Vec<Style> {
    let mut styles = Vec::new();
    for t in tokens {
        if let Token::Word(w) = t {
            if let Some(style) = Style::from_name(w) {
                if w.contains("layer") && !styles.contains(&style) {
                    styles.push(style);
                }
            }
        }
    }
    styles
}

fn find_count(tokens: &[Token]) -> (Option<usize>, bool) {
    // A count is a unitless/k/m number followed within three tokens by
    // "pattern(s)" and not part of a size pair.
    for (i, t) in tokens.iter().enumerate() {
        let Token::Number { value, unit } = t else {
            continue;
        };
        if matches!(unit, Unit::Um | Unit::Nm) {
            continue;
        }
        if matches!(tokens.get(i + 1), Some(Token::Star))
            || (i > 0 && matches!(tokens[i - 1], Token::Star))
        {
            continue;
        }
        let window = &tokens[i + 1..(i + 4).min(tokens.len())];
        let mentions_patterns = window.iter().any(|t| {
            matches!(t, Token::Word(w) if w.starts_with("pattern") || w == "layouts" || w == "samples")
        });
        if mentions_patterns {
            let per_each = tokens[(i + 1)..(i + 8).min(tokens.len())]
                .iter()
                .any(|t| matches!(t, Token::Word(w) if w == "each" || w == "every"));
            return (Some(scalar(*value, *unit) as usize), per_each);
        }
    }
    (None, false)
}

fn find_method(request: &str) -> Option<ExtensionMethod> {
    let lower = request.to_ascii_lowercase();
    if lower.contains("out-painting")
        || lower.contains("out painting")
        || lower.contains("outpainting")
    {
        Some(ExtensionMethod::OutPainting)
    } else if lower.contains("in-painting")
        || lower.contains("in painting")
        || lower.contains("inpainting")
    {
        Some(ExtensionMethod::InPainting)
    } else {
        None
    }
}

/// A bare scale factor in a follow-up utterance: "3x", "3×", "2 *",
/// "double", "triple" — a multiplier that is *not* part of an
/// `N * M` size pair.
fn find_scale_factor(tokens: &[Token]) -> Option<usize> {
    for (i, t) in tokens.iter().enumerate() {
        match t {
            Token::Word(w) => match w.as_str() {
                "double" => return Some(2),
                "triple" => return Some(3),
                "quadruple" => return Some(4),
                w if w.len() > 1 && w.ends_with('x') => {
                    if let Ok(n) = w[..w.len() - 1].parse::<usize>() {
                        if (2..=64).contains(&n) {
                            return Some(n);
                        }
                    }
                }
                _ => {}
            },
            // `N *` with no trailing number (a full pair would have
            // been consumed as a size).
            Token::Number {
                value,
                unit: Unit::None,
            } if matches!(tokens.get(i + 1), Some(Token::Star))
                && !matches!(tokens.get(i + 2), Some(Token::Number { .. })) =>
            {
                let n = value.round() as usize;
                if (2..=64).contains(&n) {
                    return Some(n);
                }
            }
            _ => {}
        }
    }
    None
}

/// Style shift implied by a density adjective ("denser" → the dense
/// layer, "sparser" → the sparse layer). Only consulted when no style
/// is named explicitly.
fn find_density_shift(tokens: &[Token]) -> Option<Style> {
    for t in tokens {
        if let Token::Word(w) = t {
            if w.starts_with("dense") {
                return Some(Style::Layer10001);
            }
            if w.starts_with("sparse") {
                return Some(Style::Layer10003);
            }
        }
    }
    None
}

fn find_drop_allowed(tokens: &[Token]) -> bool {
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t, Token::Word(w) if w.starts_with("drop")) {
            let before = &tokens[i.saturating_sub(3)..i];
            let negated = before.iter().any(|t| {
                matches!(t, Token::Word(w) if w == "not" || w == "no" || w == "never" || w == "without" || w == "don't" || w == "dont")
            });
            let after = &tokens[i + 1..(i + 4).min(tokens.len())];
            let explicit_false = after
                .iter()
                .any(|t| matches!(t, Token::Word(w) if w == "false" || w == "disallowed" || w == "forbidden"));
            if negated || explicit_false {
                return false;
            }
        }
    }
    true
}

fn find_time_limit(tokens: &[Token]) -> Option<String> {
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t, Token::Word(w) if w == "within" || w == "limit") {
            if let Some(Token::Number { value, unit: _ }) = tokens.get(i + 1) {
                if let Some(Token::Word(u)) = tokens.get(i + 2) {
                    if u.starts_with("hour") || u.starts_with("minute") || u.starts_with("second") {
                        return Some(format!("{value} {u}"));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE4: &str = "Generate a layout pattern library, there are 100k layout \
        patterns in total. The physical size fixed as 1.5um * 1.5um. The topology size \
        should be chosen from 200*200 and 500*500. They should be in style of 'Layer-10001'.";

    #[test]
    fn figure4_request_factorizes_into_two_subtasks() {
        let reqs = auto_format(FIGURE4);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].topology_size, (200, 200));
        assert_eq!(reqs[1].topology_size, (500, 500));
        for r in &reqs {
            assert_eq!(r.count, 50_000);
            assert_eq!(r.physical_size_nm, (1500, 1500));
            assert_eq!(r.style, Style::Layer10001);
            assert!(r.drop_allowed);
            assert_eq!(r.time_limit, None);
        }
    }

    #[test]
    fn render_matches_paper_template() {
        let reqs = auto_format(FIGURE4);
        let text = reqs[0].render(1);
        assert!(text.contains("# Requirement - subtask 1"));
        assert!(text.contains("Topology Size: [200, 200]"));
        assert!(text.contains("Physical Size: [1500, 1500] nm"));
        assert!(text.contains("Style: Layer-10001"));
        assert!(text.contains("Count: 50000"));
        assert!(text.contains("Drop Allowed: True"));
    }

    #[test]
    fn per_each_counts_are_not_split() {
        let reqs = auto_format(
            "Please create 10000 patterns for each setting, topology size chosen \
             from 256*256 and 512*512, style Layer-10003.",
        );
        assert_eq!(reqs.len(), 2);
        assert!(reqs.iter().all(|r| r.count == 10_000));
        assert!(reqs.iter().all(|r| r.style == Style::Layer10003));
    }

    #[test]
    fn nm_sizes_and_x_separator() {
        let reqs =
            auto_format("Make 50 patterns of physical size 2048nm x 2048nm, topology 128x128.");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].physical_size_nm, (2048, 2048));
        assert_eq!(reqs[0].topology_size, (128, 128));
        assert_eq!(reqs[0].count, 50);
    }

    #[test]
    fn multiple_styles_cross_sizes() {
        let reqs = auto_format(
            "Generate 400 patterns in total, topology sizes 128*128 and 256*256, \
             in styles Layer-10001 and Layer-10003.",
        );
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs.iter().map(|r| r.count).sum::<usize>(), 400);
    }

    #[test]
    fn method_and_drop_preferences() {
        let reqs = auto_format(
            "Create 20 patterns at 256*256 using in-painting; do not drop failed \
             patterns, style Layer-10001.",
        );
        assert_eq!(reqs[0].extension_method, Some(ExtensionMethod::InPainting));
        assert!(!reqs[0].drop_allowed);
    }

    #[test]
    fn time_limit_is_captured() {
        let reqs = auto_format("Generate 100 patterns at 128*128 within 2 hours.");
        assert_eq!(reqs[0].time_limit.as_deref(), Some("2 hours"));
    }

    #[test]
    fn defaults_when_request_is_vague() {
        let reqs = auto_format("Give me some layout patterns please.");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].topology_size, (128, 128));
        assert_eq!(reqs[0].style, Style::Layer10001);
        assert!(reqs[0].count > 0);
    }

    #[test]
    fn comma_thousands_are_parsed() {
        let reqs = auto_format("I need 10,000 patterns, topology size 128*128, Layer-10003.");
        assert_eq!(reqs[0].count, 10_000);
    }

    #[test]
    fn try_auto_format_rejects_empty_requests() {
        let err = try_auto_format("   ").expect_err("empty request must fail");
        assert!(err.message().contains("empty"));
        assert!(err.to_string().contains("requirement parsing failed"));
    }

    #[test]
    fn try_auto_format_rejects_zero_count_subtasks() {
        let err = try_auto_format(
            "Generate 1 pattern, topology size chosen from 16*16 and 32*32, style Layer-10001.",
        )
        .expect_err("1 pattern over 2 sub-tasks must fail");
        assert!(err.message().contains("zero patterns"));
    }

    #[test]
    fn try_auto_format_accepts_the_figure4_request() {
        let reqs = try_auto_format(FIGURE4).expect("valid request");
        assert_eq!(reqs.len(), 2);
    }

    fn previous_turn() -> Requirement {
        Requirement {
            topology_size: (32, 32),
            physical_size_nm: (512, 512),
            style: Style::Layer10003,
            count: 4,
            extension_method: None,
            drop_allowed: false,
            time_limit: None,
        }
    }

    #[test]
    fn followup_denser_shifts_style_and_keeps_the_rest() {
        let reqs = auto_format_with_context("Now make them denser.", Some(&previous_turn()));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].style, Style::Layer10001, "denser = the dense layer");
        assert_eq!(reqs[0].topology_size, (32, 32));
        assert_eq!(reqs[0].physical_size_nm, (512, 512));
        assert_eq!(reqs[0].count, 4);
        assert!(!reqs[0].drop_allowed, "drop preference carries over");
    }

    #[test]
    fn followup_scale_factor_grows_the_previous_size() {
        for utterance in [
            "Extend the last ones to 3x.",
            "Extend the last ones to 3×.",
            "Triple the topology size.",
        ] {
            let reqs = auto_format_with_context(utterance, Some(&previous_turn()));
            assert_eq!(reqs.len(), 1, "{utterance}");
            assert_eq!(reqs[0].topology_size, (96, 96), "{utterance}");
            assert_eq!(reqs[0].style, Style::Layer10003, "style carries over");
        }
    }

    #[test]
    fn followup_count_only_replaces_count() {
        let reqs = auto_format_with_context("2 more patterns please.", Some(&previous_turn()));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].count, 2);
        assert_eq!(reqs[0].topology_size, (32, 32));
    }

    #[test]
    fn followup_inherits_time_limit() {
        let mut prev = previous_turn();
        prev.time_limit = Some("2 hours".into());
        let reqs = auto_format_with_context("Now make them denser.", Some(&prev));
        assert_eq!(reqs[0].time_limit.as_deref(), Some("2 hours"));
        // An explicit limit in the utterance still wins.
        let reqs = auto_format_with_context("1 more pattern within 5 minutes.", Some(&prev));
        assert_eq!(reqs[0].time_limit.as_deref(), Some("5 minutes"));
    }

    #[test]
    fn followup_explicit_fields_win_over_context() {
        let reqs = auto_format_with_context(
            "Generate 6 patterns, topology size 64*64, style Layer-10001, \
             physical size 1024nm x 1024nm.",
            Some(&previous_turn()),
        );
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].topology_size, (64, 64));
        assert_eq!(reqs[0].style, Style::Layer10001);
        assert_eq!(reqs[0].physical_size_nm, (1024, 1024));
        assert_eq!(reqs[0].count, 6);
    }

    #[test]
    fn no_context_matches_auto_format() {
        for request in [FIGURE4, "Give me some layout patterns please.", "denser"] {
            assert_eq!(
                auto_format_with_context(request, None),
                auto_format(request)
            );
        }
    }
}
