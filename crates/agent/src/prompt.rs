//! System-prompt assembly (Figure 4, boxes #1–#3).

use crate::{KnowledgeBase, ToolRegistry};

/// The fixed agent-setting text (#1 Agent Setting).
pub const AGENT_SETTING: &str = "You are a layout designer and are required to \
produce a well-designed layout pattern according to the user's requirements. \
There are some rules you must follow: (1) never print raw topology matrices — \
operate on pattern ids only; (2) decompose complex requests into one \
requirement list per sub-task; (3) prefer repairing failed topologies over \
regenerating from scratch when patterns are expensive; (4) record useful \
experience for future sessions.";

/// The standard working pipeline text (#3 Document Learning).
pub const STANDARD_PIPELINE: &str = "Standard working pipeline:\n\
1. generate basic topology with fixed size: topology = topology_gen(seed, style)\n\
2. extend topology to desired size: topology = topology_extension(topology, [rows, cols])\n\
3. first attempt to legalize the topology: layout, failed, log = legalize(topology, [w, h])\n\
4. modify un-solvable region for failed case: topology = topology_modification(failed_topology, style)\n\
5. save legal patterns and summarize results.";

/// Builds the full system prompt: agent setting, tool documentation and
/// documents/experience.
#[must_use]
pub fn system_prompt(tools: &ToolRegistry, knowledge: &KnowledgeBase) -> String {
    format!(
        "#1 Agent Setting\n{AGENT_SETTING}\n\n\
         #2 Tool Learning\nDuring the design process, you have access to the \
         following functions:\n{}\n\n\
         #3 Document Learning\nThere is a standard working pipeline you can \
         refer to:\n{STANDARD_PIPELINE}\n\nThere is some experience you can refer to:\n{}",
        tools.render_descriptions(),
        knowledge.render_documents(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_contains_all_three_sections() {
        let prompt = system_prompt(&ToolRegistry::standard(), &KnowledgeBase::new());
        assert!(prompt.contains("#1 Agent Setting"));
        assert!(prompt.contains("#2 Tool Learning"));
        assert!(prompt.contains("#3 Document Learning"));
        assert!(prompt.contains("topology_gen"));
        assert!(prompt.contains("Standard working pipeline"));
    }

    #[test]
    fn prompt_reflects_recorded_experience() {
        let mut kb = KnowledgeBase::new();
        kb.add_experience("out-painting is safer for Layer-10001 at 512x512");
        let prompt = system_prompt(&ToolRegistry::standard(), &kb);
        assert!(prompt.contains("out-painting is safer"));
    }
}
