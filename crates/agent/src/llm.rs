//! The language-model abstraction behind the agent loop.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Message author in an agent transcript.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The fixed agent setting / tool documentation (#1–#3 of Figure 4).
    System,
    /// The user requirement (#4).
    User,
    /// Agent thoughts and actions.
    Assistant,
    /// Tool observations fed back to the agent.
    Observation,
}

/// One transcript entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Author of the entry.
    pub role: Role,
    /// Entry text (tool observations are JSON).
    pub content: String,
}

impl Message {
    /// Convenience constructor.
    #[must_use]
    pub fn new(role: Role, content: impl Into<String>) -> Message {
        Message {
            role,
            content: content.into(),
        }
    }
}

/// What the model decided to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentAction {
    /// Invoke a tool with JSON arguments.
    ToolCall {
        /// Registered tool name.
        name: String,
        /// JSON arguments (the `Action Input` of the transcript).
        args: Value,
    },
    /// Stop and report (#7 of Figure 4: summarize results and return).
    Finish {
        /// Final summary shown to the user.
        summary: String,
    },
}

/// One ReAct step: a thought plus an action.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentStep {
    /// The model's reasoning line (`Thought:` in the transcript).
    pub thought: String,
    /// The chosen action.
    pub action: AgentAction,
}

/// A language model driving the agent loop.
///
/// Implementations receive the full transcript (system prompt, user
/// requirement, prior thoughts/actions/observations) and emit the next
/// step. [`crate::ExpertPolicy`] is the deterministic expert; [`MockLlm`]
/// replays canned steps for protocol tests; external LLM bindings can
/// implement this trait without touching the rest of the system.
pub trait LanguageModel {
    /// Produces the next step given the transcript so far.
    fn next_step(&mut self, transcript: &[Message]) -> AgentStep;

    /// Notifies the model that a new user turn is about to start.
    ///
    /// Called by [`AgentSession::turn`](crate::AgentSession::turn)
    /// before the new utterance is appended to the transcript, so
    /// stateful models (planners, state machines) can reset their
    /// per-turn plan while keeping whatever cross-turn context they
    /// maintain. The default is a no-op: a purely transcript-driven
    /// model (or a scripted [`MockLlm`]) needs nothing here.
    fn begin_turn(&mut self) {}
}

/// A scripted model that replays a fixed list of steps.
#[derive(Debug, Clone, Default)]
pub struct MockLlm {
    steps: Vec<AgentStep>,
    cursor: usize,
}

impl MockLlm {
    /// Creates a mock that replays `steps` in order, then finishes.
    #[must_use]
    pub fn new(steps: Vec<AgentStep>) -> MockLlm {
        MockLlm { steps, cursor: 0 }
    }
}

impl LanguageModel for MockLlm {
    fn next_step(&mut self, _transcript: &[Message]) -> AgentStep {
        let step = self.steps.get(self.cursor).cloned().unwrap_or(AgentStep {
            thought: "No scripted steps remain.".to_owned(),
            action: AgentAction::Finish {
                summary: "mock exhausted".to_owned(),
            },
        });
        self.cursor += 1;
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn mock_replays_then_finishes() {
        let mut mock = MockLlm::new(vec![AgentStep {
            thought: "call a tool".into(),
            action: AgentAction::ToolCall {
                name: "topology_gen".into(),
                args: json!({"count": 1}),
            },
        }]);
        let s1 = mock.next_step(&[]);
        assert!(matches!(s1.action, AgentAction::ToolCall { .. }));
        let s2 = mock.next_step(&[]);
        assert!(matches!(s2.action, AgentAction::Finish { .. }));
    }

    #[test]
    fn message_roles_serialize() {
        let m = Message::new(Role::User, "hello");
        let s = serde_json::to_string(&m).expect("serializable");
        assert!(s.contains("User"));
    }
}
