//! The deterministic expert policy (the reproduction's LLM stand-in).
//!
//! `ExpertPolicy` implements [`LanguageModel`] as a typed state machine
//! that plans and executes exactly the working pipeline of Figure 4:
//! requirement auto-formatting, batched `topology_gen`, experience-driven
//! extension-method selection (`get_documentation`), `legalize`, and the
//! §4.2 failure handling — repair the reported unreasonable region with
//! `topology_modification` when dropping is forbidden or the pattern is
//! expensive, drop otherwise.
//!
//! Everything it learns about the world arrives through tool
//! observations (JSON text in the transcript), never by reaching into
//! the tool context — the same information boundary a real LLM has.

use crate::llm::{AgentAction, AgentStep, LanguageModel, Message, Role};
use crate::requirement::{auto_format_with_context, Requirement};
use cp_extend::ExtensionMethod;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// A legalization failure the policy still has to deal with.
#[derive(Debug, Clone)]
struct FailedCase {
    id: u64,
    upper: u64,
    left: u64,
    bottom: u64,
    right: u64,
    failures: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Init,
    AwaitGen,
    AwaitDocs,
    AwaitExtend,
    AwaitLegalize,
    AwaitSave,
    AwaitModify,
    AwaitDrop,
    AwaitExperience,
    Done,
}

/// The deterministic expert agent.
#[derive(Debug)]
pub struct ExpertPolicy {
    batch_size: usize,
    max_repairs: u64,
    requirements: Vec<Requirement>,
    current: usize,
    collected: usize,
    state: State,
    window: usize,
    generated_size: (usize, usize),
    chosen_method: Option<ExtensionMethod>,
    pending: Vec<u64>,
    repair_queue: Vec<FailedCase>,
    relegalize: Vec<u64>,
    pending_failures: Vec<Value>,
    consecutive_empty_batches: usize,
    notes: Vec<String>,
    /// The previous turn's last requirement — the context short
    /// follow-up utterances ("now make them denser") inherit
    /// unmentioned fields from. Survives [`LanguageModel::begin_turn`].
    carry: Option<Requirement>,
}

impl Default for ExpertPolicy {
    fn default() -> ExpertPolicy {
        ExpertPolicy::new(8, 2)
    }
}

impl ExpertPolicy {
    /// Creates a policy processing `batch_size` topologies per round and
    /// repairing each failed topology at most `max_repairs` times.
    #[must_use]
    pub fn new(batch_size: usize, max_repairs: u64) -> ExpertPolicy {
        ExpertPolicy {
            batch_size: batch_size.max(1),
            max_repairs,
            requirements: Vec::new(),
            current: 0,
            collected: 0,
            state: State::Init,
            window: 0,
            generated_size: (0, 0),
            chosen_method: None,
            pending: Vec::new(),
            repair_queue: Vec::new(),
            relegalize: Vec::new(),
            pending_failures: Vec::new(),
            consecutive_empty_batches: 0,
            notes: Vec::new(),
            carry: None,
        }
    }

    /// The requirement lists produced by auto-formatting (available after
    /// the first step).
    #[must_use]
    pub fn requirements(&self) -> &[Requirement] {
        &self.requirements
    }

    /// Captures the state that survives turns: the configuration, the
    /// learned model `window`, and the carried requirement. Everything
    /// else is per-turn plan state that [`LanguageModel::begin_turn`]
    /// rebuilds anyway, so a snapshot taken *between* turns restores to
    /// a policy whose next turn is byte-identical to the uninterrupted
    /// run.
    #[must_use]
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            batch_size: self.batch_size,
            max_repairs: self.max_repairs,
            window: self.window,
            carry: self.carry.clone(),
        }
    }

    /// Rebuilds a policy from a [`PolicySnapshot`] (the between-turns
    /// counterpart of [`ExpertPolicy::snapshot`]).
    #[must_use]
    pub fn from_snapshot(snapshot: PolicySnapshot) -> ExpertPolicy {
        ExpertPolicy {
            window: snapshot.window,
            carry: snapshot.carry,
            ..ExpertPolicy::new(snapshot.batch_size, snapshot.max_repairs)
        }
    }

    fn requirement(&self) -> &Requirement {
        &self.requirements[self.current]
    }

    fn physical_args(&self) -> Value {
        let (w, h) = self.requirement().physical_size_nm;
        json!([w, h])
    }

    fn remaining(&self) -> usize {
        self.requirement().count.saturating_sub(self.collected)
    }

    fn gen_step(&mut self) -> AgentStep {
        let req = self.requirement().clone();
        let count = self.remaining().min(self.batch_size);
        self.state = State::AwaitGen;
        AgentStep {
            thought: format!(
                "Sub-task {} needs {} more {} patterns at topology size {}x{}; \
                 generate a batch of {count} basic topologies first.",
                self.current + 1,
                self.remaining(),
                req.style,
                req.topology_size.0,
                req.topology_size.1,
            ),
            action: AgentAction::ToolCall {
                name: "topology_gen".to_owned(),
                args: json!({
                    "count": count,
                    "style": req.style.name(),
                    "size": [req.topology_size.0, req.topology_size.1],
                }),
            },
        }
    }

    fn extension_step(&mut self, method: ExtensionMethod) -> AgentStep {
        let req = self.requirement().clone();
        self.state = State::AwaitExtend;
        AgentStep {
            thought: format!(
                "The model window is {}x{} but the target is {}x{}; extend the \
                 batch via {method}.",
                self.generated_size.0,
                self.generated_size.1,
                req.topology_size.0,
                req.topology_size.1
            ),
            action: AgentAction::ToolCall {
                name: "topology_extension".to_owned(),
                args: json!({
                    "ids": self.pending,
                    "target": [req.topology_size.0, req.topology_size.1],
                    "method": method.name(),
                }),
            },
        }
    }

    fn legalize_step(&mut self, ids: Vec<u64>, thought: String) -> AgentStep {
        self.state = State::AwaitLegalize;
        AgentStep {
            thought,
            action: AgentAction::ToolCall {
                name: "legalize".to_owned(),
                args: json!({"ids": ids, "physical": self.physical_args()}),
            },
        }
    }

    fn modification_step(&mut self, case: &FailedCase) -> AgentStep {
        let style = self.requirement().style;
        self.state = State::AwaitModify;
        let thought = if case.failures >= 2 {
            format!(
                "Legalization has failed {} times in the same region for pattern {}; \
                 I will in-paint that specific area with the same style and then \
                 attempt legalization again.",
                case.failures, case.id
            )
        } else {
            format!(
                "Pattern {} failed legalization; the log locates the unreasonable \
                 region, so repair it with topology_modification instead of wasting \
                 the whole topology.",
                case.id
            )
        };
        AgentStep {
            thought,
            action: AgentAction::ToolCall {
                name: "topology_modification".to_owned(),
                args: json!({
                    "id": case.id,
                    "upper": case.upper,
                    "left": case.left,
                    "bottom": case.bottom,
                    "right": case.right,
                    "style": style.name(),
                    "seed": 42 + case.failures,
                }),
            },
        }
    }

    /// Shared continuation once a batch is fully resolved.
    fn continue_after_batch(&mut self) -> AgentStep {
        if self.remaining() > 0 && self.consecutive_empty_batches < 3 {
            return self.gen_step();
        }
        if self.remaining() > 0 {
            self.notes.push(format!(
                "sub-task {} abandoned with {} of {} patterns after repeated empty batches",
                self.current + 1,
                self.collected,
                self.requirement().count
            ));
        }
        // Sub-task finished (or abandoned): record experience, then move on.
        let req = self.requirement().clone();
        let text = format!(
            "Sub-task {} ({} {}x{}): delivered {} of {} requested patterns using \
             extension method {:?}.",
            self.current + 1,
            req.style,
            req.topology_size.0,
            req.topology_size.1,
            self.collected,
            req.count,
            self.chosen_method.map(ExtensionMethod::name),
        );
        self.state = State::AwaitExperience;
        AgentStep {
            thought: "Document the sub-task outcome for future sessions.".to_owned(),
            action: AgentAction::ToolCall {
                name: "report_experience".to_owned(),
                args: json!({"text": text}),
            },
        }
    }

    fn finish_step(&mut self) -> AgentStep {
        self.state = State::Done;
        let mut summary = format!(
            "Completed {} sub-task(s). Delivered patterns per sub-task: {}.",
            self.requirements.len(),
            self.notes.join("; "),
        );
        if self.notes.is_empty() {
            summary = format!(
                "Completed {} sub-task(s); all requested patterns delivered and saved \
                 to the library.",
                self.requirements.len()
            );
        }
        AgentStep {
            thought: "All sub-tasks are processed; summarize results and return.".to_owned(),
            action: AgentAction::Finish { summary },
        }
    }

    fn handle_failures(&mut self, failed: &[Value]) -> Option<AgentStep> {
        let req = self.requirement().clone();
        let target_cells = req.topology_size.0 * req.topology_size.1;
        let expensive = self.window > 0 && target_cells >= 2 * self.window * self.window;
        let mut drops: Vec<u64> = Vec::new();
        for f in failed {
            let case = FailedCase {
                id: f["id"].as_u64().unwrap_or(0),
                upper: f["region"]["upper"].as_u64().unwrap_or(0),
                left: f["region"]["left"].as_u64().unwrap_or(0),
                bottom: f["region"]["bottom"].as_u64().unwrap_or(1),
                right: f["region"]["right"].as_u64().unwrap_or(1),
                failures: f["failures"].as_u64().unwrap_or(1),
            };
            let repair = (!req.drop_allowed || expensive) && case.failures <= self.max_repairs;
            if repair {
                self.repair_queue.push(case);
            } else {
                drops.push(case.id);
            }
        }
        if !drops.is_empty() {
            self.state = State::AwaitDrop;
            return Some(AgentStep {
                thought: format!(
                    "{} topologies are cheap to regenerate (drop allowed); drop the \
                     failed cases and refill the batch.",
                    drops.len()
                ),
                action: AgentAction::ToolCall {
                    name: "drop_patterns".to_owned(),
                    args: json!({"ids": drops}),
                },
            });
        }
        self.next_repair_or_continue()
    }

    fn next_repair_or_continue(&mut self) -> Option<AgentStep> {
        if let Some(case) = self.repair_queue.pop() {
            self.relegalize.push(case.id);
            return Some(self.modification_step(&case));
        }
        if !self.relegalize.is_empty() {
            let ids = std::mem::take(&mut self.relegalize);
            return Some(self.legalize_step(
                ids,
                "The repaired topologies must pass legalization again.".to_owned(),
            ));
        }
        None
    }
}

/// The cross-turn state of an [`ExpertPolicy`], serializable for
/// session snapshots (see [`ExpertPolicy::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Topologies processed per generation round.
    pub batch_size: usize,
    /// Repair attempts per failed topology.
    pub max_repairs: u64,
    /// The model window learned from tool observations (0 = not yet
    /// observed).
    pub window: usize,
    /// The previous turn's last requirement — the context short
    /// follow-up utterances inherit unmentioned fields from.
    pub carry: Option<Requirement>,
}

/// Latest observation in the transcript, parsed as JSON.
fn last_observation(transcript: &[Message]) -> Value {
    transcript
        .iter()
        .rev()
        .find(|m| m.role == Role::Observation)
        .and_then(|m| serde_json::from_str(&m.content).ok())
        .unwrap_or(Value::Null)
}

fn last_user_request(transcript: &[Message]) -> String {
    transcript
        .iter()
        .rev()
        .find(|m| m.role == Role::User)
        .map(|m| m.content.clone())
        .unwrap_or_default()
}

impl LanguageModel for ExpertPolicy {
    /// Re-arms the state machine for the next user turn by rebuilding
    /// the policy from its constructor, explicitly carrying over only
    /// what survives turns: the configuration, the learned model
    /// `window`, and `carry` — the previous turn's last requirement,
    /// which the fresh plan inherits unmentioned fields from. Built
    /// this way, any field added later resets per turn by default
    /// instead of silently leaking stale state. The knowledge base
    /// lives in the tool context, so recorded experience persists
    /// independently of this reset.
    fn begin_turn(&mut self) {
        *self = ExpertPolicy {
            window: self.window,
            carry: self.carry.take(),
            ..ExpertPolicy::new(self.batch_size, self.max_repairs)
        };
    }

    fn next_step(&mut self, transcript: &[Message]) -> AgentStep {
        let obs = last_observation(transcript);
        if obs.get("error").is_some() && self.state != State::Init {
            self.notes.push(format!(
                "tool error during sub-task {}: {}",
                self.current + 1,
                obs["error"].as_str().unwrap_or("unknown")
            ));
            return self.finish_step();
        }
        match self.state {
            State::Init => {
                let request = last_user_request(transcript);
                self.requirements = auto_format_with_context(&request, self.carry.as_ref());
                self.carry = self.requirements.last().cloned();
                let rendered: Vec<String> = self
                    .requirements
                    .iter()
                    .enumerate()
                    .map(|(i, r)| r.render(i + 1))
                    .collect();
                let mut step = self.gen_step();
                step.thought = format!(
                    "Auto-format the request into {} requirement list(s):\n{}\n\n{}",
                    self.requirements.len(),
                    rendered.join("\n"),
                    step.thought
                );
                step
            }
            State::AwaitGen => {
                self.pending = obs["ids"]
                    .as_array()
                    .map(|a| a.iter().filter_map(Value::as_u64).collect())
                    .unwrap_or_default();
                if let Some(w) = obs["window"].as_u64() {
                    self.window = w as usize;
                }
                self.generated_size = (
                    obs["size"][0].as_u64().unwrap_or(0) as usize,
                    obs["size"][1].as_u64().unwrap_or(0) as usize,
                );
                let req = self.requirement().clone();
                if req.topology_size.0 > self.generated_size.0
                    || req.topology_size.1 > self.generated_size.1
                {
                    // Needs extension: method from the requirement or from
                    // the experience documents.
                    if let Some(method) = req.extension_method.or(self.chosen_method) {
                        self.chosen_method = Some(method);
                        self.extension_step(method)
                    } else {
                        self.state = State::AwaitDocs;
                        AgentStep {
                            thought: "The requirement leaves the extension method open; \
                                      consult the documents for the statistically better \
                                      choice for this style."
                                .to_owned(),
                            action: AgentAction::ToolCall {
                                name: "get_documentation".to_owned(),
                                args: json!({"style": req.style.name()}),
                            },
                        }
                    }
                } else {
                    let ids = self.pending.clone();
                    self.legalize_step(
                        ids,
                        "The topologies are already at target size; legalize them.".to_owned(),
                    )
                }
            }
            State::AwaitDocs => {
                let method = obs["recommended_method"]
                    .as_str()
                    .and_then(ExtensionMethod::from_name)
                    .unwrap_or_default();
                self.chosen_method = Some(method);
                self.extension_step(method)
            }
            State::AwaitExtend => {
                let ids = self.pending.clone();
                self.legalize_step(
                    ids,
                    "Extension finished; attempt to legalize the batch.".to_owned(),
                )
            }
            State::AwaitLegalize => {
                let legal: Vec<u64> = obs["legal"]
                    .as_array()
                    .map(|a| a.iter().filter_map(Value::as_u64).collect())
                    .unwrap_or_default();
                let failed = obs["failed"].as_array().cloned().unwrap_or_default();
                if legal.is_empty() {
                    self.consecutive_empty_batches += 1;
                } else {
                    self.consecutive_empty_batches = 0;
                }
                if legal.is_empty() {
                    if let Some(step) = self.handle_failures(&failed) {
                        return step;
                    }
                    return self.continue_after_batch();
                }
                // Save the clean patterns first; deal with failures next step.
                self.pending_failures = failed;
                self.state = State::AwaitSave;
                AgentStep {
                    thought: format!(
                        "{} patterns legalized cleanly; save them to the library \
                         before handling the {} failure(s).",
                        legal.len(),
                        self.pending_failures.len()
                    ),
                    action: AgentAction::ToolCall {
                        name: "save_library".to_owned(),
                        args: json!({"ids": legal}),
                    },
                }
            }
            State::AwaitSave => {
                if let Some(saved) = obs["saved"].as_u64() {
                    self.collected += saved as usize;
                }
                let failed = std::mem::take(&mut self.pending_failures);
                if !failed.is_empty() {
                    if let Some(step) = self.handle_failures(&failed) {
                        return step;
                    }
                }
                if let Some(step) = self.next_repair_or_continue() {
                    return step;
                }
                self.continue_after_batch()
            }
            State::AwaitModify => {
                if let Some(step) = self.next_repair_or_continue() {
                    return step;
                }
                self.continue_after_batch()
            }
            State::AwaitDrop => {
                if let Some(step) = self.next_repair_or_continue() {
                    return step;
                }
                self.continue_after_batch()
            }
            State::AwaitExperience => {
                self.notes.push(format!(
                    "sub-task {}: {}/{} patterns",
                    self.current + 1,
                    self.collected,
                    self.requirement().count
                ));
                if self.current + 1 < self.requirements.len() {
                    self.current += 1;
                    self.collected = 0;
                    self.chosen_method = None;
                    self.consecutive_empty_batches = 0;
                    self.gen_step()
                } else {
                    self.finish_step()
                }
            }
            State::Done => AgentStep {
                thought: "Nothing left to do.".to_owned(),
                action: AgentAction::Finish {
                    summary: "session already finished".to_owned(),
                },
            },
        }
    }
}
