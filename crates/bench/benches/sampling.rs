//! Criterion: conditional diffusion sampling throughput.
use chatpattern_core::ChatPattern;
use cp_dataset::Style;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let system = ChatPattern::builder()
        .window(32)
        .training_patterns(16)
        .diffusion_steps(8)
        .build()
        .expect("valid bench configuration");
    let mut seed = 0u64;
    c.bench_function("sample_32x32_conditional", |b| {
        b.iter(|| {
            seed += 1;
            system
                .generate(Style::Layer10001, 32, 32, 1, seed)
                .expect("valid generation request")
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
