//! Criterion: squish encode/normalize round trip on a dense map window.
use cp_dataset::{generate_map, MapParams, Style};
use cp_geom::Rect;
use cp_squish::{normalize_to, SquishPattern};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let map = generate_map(
        Style::Layer10001,
        MapParams {
            width_nm: 4096,
            height_nm: 4096,
        },
        &mut rng,
    );
    let window = map.window(Rect::new(0, 0, 1024, 1024));
    c.bench_function("squish_and_normalize_1024nm_to_64", |b| {
        b.iter(|| {
            let squish = SquishPattern::from_layout(std::hint::black_box(&window)).minimized();
            normalize_to(&squish, 64, 64)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
