//! Serial vs. engine `execute_many` on the acceptance-criteria batch:
//! 32 Generate requests, each with its own seed stream, once per
//! execution backend. The engines run with the result cache disabled
//! so every iteration measures real sampling work, not replay.

use chatpattern_core::{
    BackendKind, ChatPattern, EngineConfig, GenerateParams, PatternEngine, PatternRequest,
    PatternService,
};
use cp_dataset::Style;
use criterion::{criterion_group, criterion_main, Criterion};

fn batch() -> Vec<PatternRequest> {
    (0..32u64)
        .map(|seed| {
            PatternRequest::Generate(GenerateParams {
                style: if seed.is_multiple_of(2) {
                    Style::Layer10001
                } else {
                    Style::Layer10003
                },
                rows: 16,
                cols: 16,
                count: 1,
                seed,
            })
        })
        .collect()
}

fn small_system() -> ChatPattern {
    ChatPattern::builder()
        .window(16)
        .training_patterns(8)
        .diffusion_steps(6)
        .seed(0)
        .build()
        .expect("valid configuration")
}

fn engine(backend: BackendKind) -> PatternEngine<ChatPattern> {
    PatternEngine::with_config(
        small_system(),
        EngineConfig {
            backend,
            workers: 4,
            queue_depth: 64,
            cache_capacity: 0,
            max_microbatch: 1,
        },
    )
    .expect("valid config")
}

fn bench_execute_many(c: &mut Criterion) {
    let system = small_system();
    let mut group = c.benchmark_group("execute_many_32");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            let results = system.execute_many(batch());
            assert!(results.iter().all(Result::is_ok));
        });
    });
    for (name, backend) in [
        ("inline", BackendKind::Inline),
        ("pooled_4_workers", BackendKind::ThreadPool),
        ("sharded_2x2", BackendKind::Sharded { shards: 2 }),
    ] {
        let engine = engine(backend);
        group.bench_function(name, |b| {
            b.iter(|| {
                let results = engine.execute_many(batch());
                assert!(results.iter().all(Result::is_ok));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execute_many);
criterion_main!(benches);
