//! Criterion: a complete small agent session end to end.
use chatpattern_core::ChatPattern;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let system = ChatPattern::builder()
        .window(16)
        .training_patterns(8)
        .diffusion_steps(6)
        .build()
        .expect("valid bench configuration");
    let mut seed = 0u64;
    let mut group = c.benchmark_group("agent");
    group.sample_size(10);
    group.bench_function("chat_session_2_patterns", |b| {
        b.iter(|| {
            seed += 1;
            system
                .chat_with_seed(
                    "Generate 2 patterns, topology size 16*16, physical size 512nm x 512nm, \
                     style Layer-10001.",
                    seed,
                )
                .expect("valid chat request")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
