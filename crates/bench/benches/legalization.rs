//! Criterion: legalization throughput at the default window.
use chatpattern_core::ChatPattern;
use cp_dataset::Style;
use cp_legalize::Legalizer;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    let system = ChatPattern::builder()
        .window(32)
        .training_patterns(16)
        .diffusion_steps(8)
        .build()
        .expect("valid bench configuration");
    let topology = system
        .generate(Style::Layer10001, 32, 32, 1, 1)
        .expect("valid generation request")
        .remove(0);
    let legalizer = Legalizer::new(*system.rules());
    c.bench_function("legalize_32x32", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| legalizer.legalize(std::hint::black_box(&topology), 512, 512, &mut rng));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
