//! Criterion: out-painting extension to 2L.
use chatpattern_core::ChatPattern;
use cp_dataset::Style;
use cp_extend::ExtensionMethod;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let system = ChatPattern::builder()
        .window(32)
        .training_patterns(16)
        .diffusion_steps(8)
        .build()
        .expect("valid bench configuration");
    let seed_topo = system
        .generate(Style::Layer10003, 32, 32, 1, 1)
        .expect("valid generation request")
        .remove(0);
    let mut seed = 0u64;
    c.bench_function("out_paint_32_to_64", |b| {
        b.iter(|| {
            seed += 1;
            system
                .extend(
                    &seed_topo,
                    64,
                    64,
                    ExtensionMethod::OutPainting,
                    Style::Layer10003,
                    seed,
                )
                .expect("valid extension request")
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
