//! Figure 4 + §4.2: the agent working pipeline on the paper's running
//! example — requirement auto-formatting into sub-task lists, planning,
//! tool calls, and the final summary. Counts/sizes scale with CP_WINDOW.

use cp_bench::BenchConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.print_banner("Figure 4: agent working pipeline");
    let system = cfg.build_system();
    // The paper's request, scaled: sizes {2L, 3L} instead of {200, 500},
    // a small total count, physical size = frame at the base window.
    let request = format!(
        "Generate a layout pattern library, there are {} layout patterns in total. \
         The physical size fixed as {}nm * {}nm. The topology size should be chosen \
         from {}*{} and {}*{}. They should be in style of 'Layer-10001'.",
        8,
        cfg.frame_nm(cfg.window * 3),
        cfg.frame_nm(cfg.window * 3),
        cfg.window * 2,
        cfg.window * 2,
        cfg.window * 3,
        cfg.window * 3,
    );
    println!("[User request]\n{request}\n");
    let report = system
        .chat(&request)
        .expect("the Figure-4 request parses into requirements");
    println!("{}", report.render_transcript());
    println!(
        "=> delivered {} patterns with {} tool calls\nsummary: {}",
        report.library.len(),
        report.tool_calls,
        report.summary
    );
}
