//! Internal calibration probe: minimal legalization extents per method.
use cp_baselines::{Cae, DiffPattern, Generator, LayouTransformer, LegalGan, Vcae};
use cp_bench::{training_topologies, BenchConfig};
use cp_dataset::Style;
use cp_geom::Axis;
use cp_legalize::Legalizer;
use cp_squish::Topology;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn extents(label: &str, lib: &[Topology], legalizer: &Legalizer) {
    let mut exts: Vec<i64> = lib
        .iter()
        .map(|t| {
            let x = legalizer
                .solve_axis(t, Axis::X, i64::MAX / 4)
                .map(|s| s.total)
                .unwrap_or(0);
            let y = legalizer
                .solve_axis(t, Axis::Y, i64::MAX / 4)
                .map(|s| s.total)
                .unwrap_or(0);
            x.max(y)
        })
        .collect();
    exts.sort_unstable();
    let n = exts.len();
    println!(
        "{label:<18} min {} p25 {} median {} p75 {} max {}",
        exts[0],
        exts[n / 4],
        exts[n / 2],
        exts[3 * n / 4],
        exts[n - 1]
    );
}

fn main() {
    let cfg = BenchConfig::from_env();
    let system = cfg.build_system();
    let legalizer = Legalizer::new(*system.rules());
    let train_a = training_topologies(&system, Style::Layer10001);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = 40;
    extents("train-10001", &train_a, &legalizer);
    let gan = LegalGan::fit(&train_a);
    println!(
        "legalgan min runs: x={} y={}",
        gan.min_run_x(),
        gan.min_run_y()
    );
    let cae = Cae::fit(&train_a, 12);
    let lib: Vec<Topology> = (0..n)
        .map(|_| gan.legalize_topology(&cae.generate(32, 32, &mut rng)))
        .collect();
    extents("cae+gan", &lib, &legalizer);
    let lib: Vec<Topology> = (0..n).map(|_| cae.generate(32, 32, &mut rng)).collect();
    extents("cae-raw", &lib, &legalizer);
    let vcae = Vcae::fit(&train_a, 12);
    let lib: Vec<Topology> = (0..n)
        .map(|_| gan.legalize_topology(&vcae.generate(32, 32, &mut rng)))
        .collect();
    extents("vcae+gan", &lib, &legalizer);
    let lt = LayouTransformer::fit(&train_a, 1.0);
    let lib: Vec<Topology> = (0..n).map(|_| lt.generate(32, 32, &mut rng)).collect();
    extents("layoutransformer", &lib, &legalizer);
    let dp = DiffPattern::fit(&train_a, cfg.steps, 32);
    let lib: Vec<Topology> = (0..n).map(|_| dp.generate(32, 32, &mut rng)).collect();
    extents("diffpattern", &lib, &legalizer);
    let lib = system
        .generate(Style::Layer10001, 32, 32, n, 5)
        .expect("calibration generation parameters are valid");
    extents("chatpattern", &lib, &legalizer);
}
