//! Many-connection soak for the event-loop transport: `CP_SOAK_CONNS`
//! clients (default 256) against one in-process `EventLoopServer`,
//! every client pipelining several requests before any reply is read —
//! so hundreds of connections hold outstanding replies in the loop's
//! outbound queues at once. The run fails (non-zero exit) on any
//! dropped, garbled, or mis-correlated reply, and checks the engine's
//! connection counters end-to-end: peak ≥ the client count, zero
//! backpressure kills, and every disconnect observed as clean once the
//! clients hang up.
//!
//! This is the CI gate behind the "event loop sustains hundreds of
//! concurrent connections without losing a byte" claim; scale knobs
//! are the usual `CP_*` variables plus `CP_SOAK_CONNS`.

#[cfg(unix)]
fn run() -> Result<(), String> {
    use chatpattern_core::wire::{RequestEnvelope, WireOutcome};
    use chatpattern_core::{
        BackendKind, EngineConfig, GenerateParams, PatternEngine, PatternRequest,
    };
    use cp_bench::BenchConfig;
    use cp_dataset::Style;
    use cp_net::{ClientConfig, EngineHandler, EventLoopConfig, EventLoopServer, NdjsonClient};
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let conns: usize = std::env::var("CP_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(256);
    // Stats pipelined per client; every 32nd client also runs one real
    // Generate so the soak exercises diffusion work, not just framing.
    let stats_per_conn = 4usize;

    let cfg = BenchConfig::from_env();
    cfg.print_banner("Connection soak: pipelined clients vs. the event-loop transport");
    cp_net::raise_nofile_limit();

    let system = Arc::new(cfg.build_system());
    let engine = Arc::new(
        PatternEngine::with_config(
            Arc::clone(&system),
            EngineConfig {
                backend: BackendKind::ThreadPool,
                workers: 2,
                queue_depth: conns * (stats_per_conn + 1),
                cache_capacity: 0,
                max_microbatch: 1,
            },
        )
        .map_err(|e| format!("engine config: {e}"))?,
    );
    let counters = engine.conn_counters();
    let server = EventLoopServer::bind("127.0.0.1:0", EventLoopConfig::default())
        .map_err(|e| format!("bind: {e}"))?
        .conn_counters(counters);
    let addr = server.local_addr().to_string();
    let handle = server
        .spawn(Arc::new(EngineHandler::new(Arc::clone(&engine))))
        .map_err(|e| format!("spawn: {e}"))?;

    let config = ClientConfig::default();
    let started = Instant::now();
    let mut clients = Vec::with_capacity(conns);
    for i in 0..conns {
        clients.push(
            NdjsonClient::connect(&addr, config.clone())
                .map_err(|e| format!("connect {i}: {e}"))?,
        );
    }
    println!(
        "  {conns} connections open in {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // Phase 1: every client writes its whole pipeline before anyone
    // reads a reply — the loop must buffer replies per connection.
    let mut expected: Vec<HashSet<u64>> = Vec::with_capacity(conns);
    for (i, client) in clients.iter_mut().enumerate() {
        let mut ids = HashSet::new();
        for seq in 0..stats_per_conn {
            let id = (i * 16 + seq) as u64;
            client
                .send(&RequestEnvelope {
                    id: serde_json::to_value(&id),
                    tenant: None,
                    request: PatternRequest::Stats,
                })
                .map_err(|e| format!("send conn {i} seq {seq}: {e}"))?;
            ids.insert(id);
        }
        if i % 32 == 0 {
            let id = (i * 16 + stats_per_conn) as u64;
            client
                .send(&RequestEnvelope {
                    id: serde_json::to_value(&id),
                    tenant: None,
                    request: PatternRequest::Generate(GenerateParams {
                        style: Style::Layer10001,
                        rows: cfg.window,
                        cols: cfg.window,
                        count: 1,
                        seed: i as u64,
                    }),
                })
                .map_err(|e| format!("send conn {i} generate: {e}"))?;
            ids.insert(id);
        }
        expected.push(ids);
    }

    // Phase 2: drain every connection and tick off every id. Any
    // missing, duplicated, or unparseable reply fails the soak.
    let mut replies = 0usize;
    for (i, client) in clients.iter_mut().enumerate() {
        let want = &mut expected[i];
        while !want.is_empty() {
            let reply = client.recv().map_err(|e| format!("recv conn {i}: {e}"))?;
            if !matches!(reply.outcome, WireOutcome::Ok(_)) {
                return Err(format!("conn {i}: request errored"));
            }
            let id = reply
                .id
                .as_f64()
                .ok_or_else(|| format!("conn {i}: non-numeric reply id"))?;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let id = id as u64;
            if !want.remove(&id) {
                return Err(format!("conn {i}: unexpected or duplicate reply id {id}"));
            }
            replies += 1;
        }
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = engine.stats();
    if (stats.connections_live as usize) != conns {
        return Err(format!(
            "live connection counter {} != {conns} open clients",
            stats.connections_live
        ));
    }
    if (stats.connections_peak as usize) < conns {
        return Err(format!(
            "peak connection counter {} < {conns}",
            stats.connections_peak
        ));
    }
    if stats.disconnects_backpressure != 0 {
        return Err(format!(
            "{} backpressure kill(s) during a well-behaved soak",
            stats.disconnects_backpressure
        ));
    }

    // Hang up everything and wait for the loop to observe each EOF.
    drop(clients);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = engine.stats();
        if stats.connections_live == 0 && (stats.disconnects_clean as usize) >= conns {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "disconnects not all observed: live={} clean={} (want 0 / ≥{conns})",
                stats.connections_live, stats.disconnects_clean
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();

    println!(
        "  soak OK: {replies} replies over {conns} connections in {elapsed_ms:.1} ms, \
         peak {} live, 0 dropped, 0 garbled, 0 backpressure kills",
        conns
    );
    Ok(())
}

#[cfg(not(unix))]
fn run() -> Result<(), String> {
    println!("conn_soak: event-loop transport is unix-only; nothing to soak");
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("conn_soak FAILED: {message}");
        std::process::exit(1);
    }
}
