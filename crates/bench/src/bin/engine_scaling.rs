//! Engine scaling: serial `execute_many` vs. every execution backend
//! (inline, thread pool at several worker counts, sharded) on a
//! 32-request Generate batch, plus a duplicate-request burst measuring
//! the in-flight coalescing hit rate, a `session_turns` sweep (N
//! concurrent chat sessions × M turns each, threadpool vs. sharded
//! session-affine routing), and a `session_spill_rehydrate` sweep (N
//! sessions over a smaller store capacity with an in-memory
//! durability layer, so every turn pays a spill + rehydrate — the
//! steady-state cost of durable over-capacity operation), a
//! `session_durability` sweep (the spill-ahead writer firing on every
//! turn over a sharded on-disk store — the per-turn durable-write tax
//! — followed by a restart over the same directory with one lazy
//! rehydrate turn per session), a
//! `tcp_round_trip` sweep (the same Generate batch through an
//! in-process `cp_net` NDJSON-over-TCP loopback server, pipelined and
//! strictly sequential — the transport tax relative to the in-process
//! backends above), a `router_fanout` sweep (the batch through a
//! real spawned `chatpattern-router` fleet at several worker counts;
//! skipped with a note when the release binaries are not built), a
//! `microbatch` sweep (an 8-request batch-compatible Generate burst
//! through a single worker, fused by the drain stage vs. forced solo,
//! plus the same burst at the denoiser layer through the fused
//! batched UNet — the kernel where cross-request batching amortizes
//! the most), and a
//! `connection_scaling` sweep (C idle + K active connections against
//! an in-process loopback serve, the 64-thread-capped thread
//! transport vs. the epoll event loop up to 1024 connections, with
//! active-request p50/p99 and a sustained-idle-connection proof;
//! shape it with `CP_CONN_IDLE` / `CP_CONN_ACTIVE` / `CP_CONN_CALLS`),
//! and a
//! `hot_loops` sweep (`Layout::union_area`,
//! `SquishPattern::from_layout` and the legalizer solve in isolation
//! on a dense synthetic layout — the three surgically-tuned loops).
//! Prints a table and writes `BENCH_ENGINE.json` (in the working
//! directory) so the perf trajectory captures the backend dimension,
//! coalescing, the stateful session workloads and the network path.
//!
//! Scale with the usual `CP_*` variables; `CP_ENGINE_WORKERS` is a
//! comma-separated list of thread-pool sizes to sweep (default
//! `2,4,8`) and `CP_ENGINE_SHARDS` the shard counts for the sharded
//! backend (default `2,4`). `CP_ENGINE_SESSIONS` / `CP_ENGINE_TURNS`
//! shape the session sweep (default `4` × `4`);
//! `CP_ROUTER_WORKERS` the router fleet sizes (default `1,2`).
//!
//! With `--check` the binary becomes a regression gate: it runs the
//! same sweeps but, instead of overwriting `BENCH_ENGINE.json`,
//! compares every `*millis` metric against the committed baseline
//! (`--baseline PATH`, default `BENCH_ENGINE.json`) and exits
//! non-zero when any is slower than `--threshold` times its baseline
//! (default `1.5`). The run also fails when the baseline lacks a
//! metric this bench emits (a stale baseline leaves new series
//! unguarded). When the baseline was recorded at a different config
//! (window / steps / train / CPU count) the comparison is advisory:
//! ratios and staleness are printed but never fail the run.

use chatpattern_core::{
    BackendKind, ChatPattern, EngineConfig, GenerateParams, JobHandle, PatternEngine,
    PatternRequest, PatternService, SessionCloseParams, SessionOpenParams, SessionTurnParams,
};
use cp_bench::BenchConfig;
use cp_dataset::Style;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 32;
/// Distinct requests inside the coalescing burst: 32 submits spread
/// over 4 unique keys → up to 28 coalesced attachments.
const UNIQUE: u64 = 4;

fn batch(cfg: &BenchConfig) -> Vec<PatternRequest> {
    (0..BATCH as u64)
        .map(|seed| {
            PatternRequest::Generate(GenerateParams {
                style: if seed.is_multiple_of(2) {
                    Style::Layer10001
                } else {
                    Style::Layer10003
                },
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed,
            })
        })
        .collect()
}

fn run_serial(system: &ChatPattern, cfg: &BenchConfig) -> f64 {
    let started = Instant::now();
    let results = system.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "serial batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

fn engine(
    system: &Arc<ChatPattern>,
    backend: BackendKind,
    workers: usize,
) -> PatternEngine<Arc<ChatPattern>> {
    engine_with_microbatch(system, backend, workers, 1)
}

fn engine_with_microbatch(
    system: &Arc<ChatPattern>,
    backend: BackendKind,
    workers: usize,
    max_microbatch: usize,
) -> PatternEngine<Arc<ChatPattern>> {
    PatternEngine::with_config(
        Arc::clone(system),
        EngineConfig {
            backend,
            workers,
            queue_depth: BATCH,
            // Disabled: scaling numbers must measure sampling, not
            // cache replay (in-flight coalescing stays active but the
            // batch has distinct seeds, so it never triggers here).
            cache_capacity: 0,
            max_microbatch,
        },
    )
    .expect("valid engine config")
}

fn run_backend(
    system: &Arc<ChatPattern>,
    cfg: &BenchConfig,
    backend: BackendKind,
    workers: usize,
) -> f64 {
    let engine = engine(system, backend, workers);
    let started = Instant::now();
    let results = engine.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "pooled batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

/// Submits `BATCH` requests cycling through `UNIQUE` distinct seeds,
/// all in flight at once, and reports `(millis, coalesced)`.
fn run_coalescing(system: &Arc<ChatPattern>, cfg: &BenchConfig, workers: usize) -> (f64, u64) {
    let engine = engine(system, BackendKind::ThreadPool, workers);
    let started = Instant::now();
    let handles: Vec<JobHandle> = (0..BATCH as u64)
        .map(|i| {
            engine.submit_blocking(PatternRequest::Generate(GenerateParams {
                style: Style::Layer10001,
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed: i % UNIQUE,
            }))
        })
        .collect();
    for handle in handles {
        handle.wait().expect("burst request completes");
    }
    let millis = started.elapsed().as_secs_f64() * 1e3;
    (millis, engine.stats().coalesced)
}

/// A burst of batch-compatible Generate requests (same style/shape,
/// distinct seeds) through a single-worker thread pool. A tiny
/// shape-incompatible job pins the worker first, so the whole burst is
/// sitting in the queue when the worker pops the leader and — with
/// `max_microbatch > 1` — drains the rest into one fused
/// `sample_batch` call. With `max_microbatch == 1` every job samples
/// alone; the ratio of the two runs is the fused-vs-serial speedup.
/// Returns `(millis, fused_jobs)` where `fused_jobs` is the engine's
/// `batched` counter (jobs that ran inside a fused execution).
fn run_microbatch(
    system: &Arc<ChatPattern>,
    cfg: &BenchConfig,
    burst: usize,
    max_microbatch: usize,
) -> (f64, u64) {
    let engine = engine_with_microbatch(system, BackendKind::ThreadPool, 1, max_microbatch);
    // 4×4 differs from the burst shape, so its fingerprint never
    // matches and it cannot fuse with (or be drained by) the burst.
    let blocker = engine.submit_blocking(PatternRequest::Generate(GenerateParams {
        style: Style::Layer10003,
        rows: 4,
        cols: 4,
        count: 1,
        seed: 0,
    }));
    let started = Instant::now();
    let handles: Vec<JobHandle> = (0..burst as u64)
        .map(|seed| {
            engine.submit_blocking(PatternRequest::Generate(GenerateParams {
                style: Style::Layer10001,
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed,
            }))
        })
        .collect();
    blocker.wait().expect("blocker request completes");
    for handle in handles {
        handle.wait().expect("burst request completes");
    }
    let millis = started.elapsed().as_secs_f64() * 1e3;
    (millis, engine.stats().batched)
}

/// The same 8-compatible-request burst at the denoiser layer: N seeded
/// reverse processes through the fused batched UNet denoiser
/// (`sample_batch`, one batch-inner conv pass per step) vs. N serial
/// `sample` calls. This is where cross-request microbatching pays the
/// most — the convolution kernel amortizes its weight loads and
/// boundary checks across the batch — whereas the MRF engine path
/// above is dominated by per-sample mean-field arithmetic. Also
/// asserts the fused outputs are byte-identical to the serial ones.
/// Returns `(serial_millis, fused_millis)`.
fn run_unet_burst(cfg: &BenchConfig, burst: usize) -> (f64, f64) {
    use cp_diffusion::{DiffusionModel, NoiseSchedule, UNetDenoiser};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let size = 32usize;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let denoiser = UNetDenoiser::new(8, vec![0], size, &mut rng);
    let model = DiffusionModel::new(NoiseSchedule::scaled_default(cfg.steps), denoiser, size);
    // Warm-up pass.
    let mut warm = ChaCha8Rng::seed_from_u64(cfg.seed);
    let _ = model.sample(size, size, Some(0), &mut warm);

    let started = Instant::now();
    let serial: Vec<_> = (0..burst as u64)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            model.sample(size, size, Some(0), &mut rng)
        })
        .collect();
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut rngs: Vec<ChaCha8Rng> = (0..burst as u64).map(ChaCha8Rng::seed_from_u64).collect();
    let started = Instant::now();
    let fused = model.sample_batch(size, size, Some(0), &mut rngs);
    let fused_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fused, serial, "fused UNet burst must be byte-identical");
    (serial_ms, fused_ms)
}

/// The three surgically-optimised inner loops, isolated from the
/// engine: `Layout::union_area` (row-band sweep over one reused
/// coverage mask), `SquishPattern::from_layout` (per-rect block fill),
/// and the legalizer solve (flat bound collection plus
/// buffer-reusing area repair), all on one dense synthetic layout.
/// Returns `(union_millis, encode_millis, legalize_millis, rows, cols)`
/// where `rows × cols` is the scan-grid size the loops ran over.
fn run_hot_loops(cfg: &BenchConfig, rects: usize, reps: usize) -> (f64, f64, f64, usize, usize) {
    use cp_drc::DesignRules;
    use cp_geom::{Layout, Rect};
    use cp_legalize::Legalizer;
    use cp_squish::SquishPattern;
    use rand::{Rng, SeedableRng};

    let frame = 4096i64;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut layout = Layout::new(Rect::new(0, 0, frame, frame));
    for _ in 0..rects {
        let x0 = rng.gen_range(0..frame - 256);
        let y0 = rng.gen_range(0..frame - 256);
        let w = rng.gen_range(16..256);
        let h = rng.gen_range(16..256);
        layout.push(Rect::new(x0, y0, x0 + w, y0 + h));
    }

    let started = Instant::now();
    let mut area = 0;
    for _ in 0..reps {
        area = std::hint::black_box(&layout).union_area();
    }
    let union_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(area > 0, "synthetic layout draws something");

    let started = Instant::now();
    let mut pattern = SquishPattern::from_layout(&layout);
    for _ in 1..reps {
        pattern = SquishPattern::from_layout(std::hint::black_box(&layout));
    }
    let encode_ms = started.elapsed().as_secs_f64() * 1e3;

    let topology = pattern.topology().clone();
    let (rows, cols) = topology.shape();
    // 64 nm per interval against 20 nm rule minimums: the solve always
    // succeeds, so the timing measures the solver, not failure paths.
    let legal_w = 64 * (cols as i64 + 1);
    let legal_h = 64 * (rows as i64 + 1);
    let legalizer = Legalizer::new(DesignRules::new(20, 20, 400));
    let started = Instant::now();
    for i in 0..reps {
        let mut legalize_rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed + i as u64);
        let legalized = legalizer
            .legalize(&topology, legal_w, legal_h, &mut legalize_rng)
            .expect("synthetic topology legalizes in a generous frame");
        std::hint::black_box(legalized);
    }
    let legalize_ms = started.elapsed().as_secs_f64() * 1e3;
    (union_ms, encode_ms, legalize_ms, rows, cols)
}

/// N concurrent sessions × M turns each through one engine: opens the
/// sessions, submits every turn (turns on one session serialize on its
/// session lock; distinct sessions run in parallel — shard-local when
/// sharded), waits for all, closes. Returns elapsed milliseconds.
fn run_session_turns(
    system: &Arc<ChatPattern>,
    cfg: &BenchConfig,
    backend: BackendKind,
    workers: usize,
    sessions: usize,
    turns: usize,
) -> f64 {
    let engine = engine(system, backend, workers);
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );
    // The turn counter lives in the shared system, so measure a delta
    // (this sweep runs once per backend on one system).
    let turns_before = system.session_stats().turns;
    let started = Instant::now();
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionOpen(SessionOpenParams {
                session: format!("bench-{s}"),
                seed: Some(s as u64),
            }))
            .expect("session opens");
    }
    let handles: Vec<JobHandle> = (0..turns)
        .flat_map(|_| 0..sessions)
        .map(|s| {
            engine.submit_blocking(PatternRequest::SessionTurn(SessionTurnParams {
                session: format!("bench-{s}"),
                utterance: utterance.clone(),
            }))
        })
        .collect();
    for handle in handles {
        handle.wait().expect("turn completes");
    }
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionClose(SessionCloseParams {
                session: format!("bench-{s}"),
            }))
            .expect("session closes");
    }
    let stats = engine.stats();
    assert_eq!(
        (stats.turns - turns_before) as usize,
        sessions * turns,
        "every submitted turn executed"
    );
    assert_eq!(stats.coalesced, 0, "session turns never coalesce");
    assert_eq!(stats.cache_hits, 0, "session turns never hit the cache");
    started.elapsed().as_secs_f64() * 1e3
}

/// N sessions over a capacity-limited durable store, M rounds of
/// round-robin turns: with `sessions > capacity` every turn rehydrates
/// a spilled session (and spills another), so the measured time is the
/// steady-state spill+rehydrate overhead. Returns
/// `(millis, spilled, restored)`.
fn run_session_spill(
    cfg: &BenchConfig,
    capacity: usize,
    sessions: usize,
    turns: usize,
    workers: usize,
) -> (f64, u64, u64) {
    // A dedicated system: the spill sweep needs its own (small)
    // session capacity and an in-memory durability layer.
    let system = Arc::new(
        ChatPattern::builder()
            .window(cfg.window)
            .training_patterns(cfg.train)
            .diffusion_steps(cfg.steps)
            .seed(cfg.seed)
            .max_sessions(capacity)
            .session_spill_memory()
            .build()
            .expect("valid spill-sweep configuration"),
    );
    let engine = engine(&system, BackendKind::ThreadPool, workers);
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );
    let started = Instant::now();
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionOpen(SessionOpenParams {
                session: format!("spill-{s}"),
                seed: Some(s as u64),
            }))
            .expect("session opens");
    }
    for _ in 0..turns {
        for s in 0..sessions {
            engine
                .execute(PatternRequest::SessionTurn(SessionTurnParams {
                    session: format!("spill-{s}"),
                    utterance: utterance.clone(),
                }))
                .expect("turn on a (possibly spilled) session succeeds");
        }
    }
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionClose(SessionCloseParams {
                session: format!("spill-{s}"),
            }))
            .expect("session closes");
    }
    let millis = started.elapsed().as_secs_f64() * 1e3;
    let stats = engine.stats();
    assert_eq!(
        stats.sessions_evicted, 0,
        "durability must spill, never destroy"
    );
    assert!(
        stats.sessions_spilled > 0 && stats.sessions_restored > 0,
        "an over-capacity sweep must exercise spill + rehydrate"
    );
    (millis, stats.sessions_spilled, stats.sessions_restored)
}

/// N sessions in a sharded on-disk store with the spill-ahead writer
/// firing on every turn: the measured time is real durable-write
/// overhead (snapshot + compaction + tmp-write + rename per turn). A
/// second system over the same directory then serves one turn per
/// session — the restart path, every turn a lazy rehydrate. Returns
/// `(turn_millis, restart_millis, spilled_ahead, bytes_saved)`.
fn run_session_durability(
    cfg: &BenchConfig,
    sessions: usize,
    turns: usize,
    shards: usize,
    workers: usize,
) -> (f64, f64, u64, u64) {
    let dir = std::env::temp_dir().join(format!(
        "cp-bench-durability-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("bench spill dir");
    let build = || {
        Arc::new(
            ChatPattern::builder()
                .window(cfg.window)
                .training_patterns(cfg.train)
                .diffusion_steps(cfg.steps)
                .seed(cfg.seed)
                .max_sessions(sessions.max(1))
                .session_dir(&dir)
                .persist_shards(shards)
                .spill_ahead_turns(1)
                .build()
                .expect("valid durability configuration"),
        )
    };
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );

    let system = build();
    let live = engine(&system, BackendKind::ThreadPool, workers);
    for s in 0..sessions {
        live.execute(PatternRequest::SessionOpen(SessionOpenParams {
            session: format!("durable-{s}"),
            seed: Some(s as u64),
        }))
        .expect("session opens");
    }
    let started = Instant::now();
    for _ in 0..turns {
        for s in 0..sessions {
            live.execute(PatternRequest::SessionTurn(SessionTurnParams {
                session: format!("durable-{s}"),
                utterance: utterance.clone(),
            }))
            .expect("durable turn succeeds");
        }
    }
    let turn_millis = started.elapsed().as_secs_f64() * 1e3;
    let stats = live.stats();
    let spilled_ahead = stats.sessions_spilled_ahead;
    let bytes_saved = stats.snapshot_bytes_saved;
    assert_eq!(
        spilled_ahead as usize,
        sessions * turns,
        "spill-ahead every turn must write every turn"
    );
    // Simulated stop: drop the engine without closing sessions — the
    // spill-ahead snapshots on disk are what the restart finds.
    drop(live);
    drop(system);

    let system = build();
    let engine = engine(&system, BackendKind::ThreadPool, workers);
    let started = Instant::now();
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionTurn(SessionTurnParams {
                session: format!("durable-{s}"),
                utterance: utterance.clone(),
            }))
            .expect("restarted turn rehydrates");
    }
    let restart_millis = started.elapsed().as_secs_f64() * 1e3;
    let stats = engine.stats();
    assert_eq!(
        stats.sessions_restored as usize, sessions,
        "every session rehydrated from its spill-ahead snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
    (turn_millis, restart_millis, spilled_ahead, bytes_saved)
}

/// The Generate batch through an in-process TCP loopback
/// (`NdjsonServer` + `EngineHandler`): pipelined (all requests in
/// flight, then collect) and strictly sequential (one call at a
/// time). Returns `(pipelined_millis, sequential_millis)`.
fn run_tcp_round_trip(system: &Arc<ChatPattern>, cfg: &BenchConfig, workers: usize) -> (f64, f64) {
    use chatpattern_core::wire::{RequestEnvelope, WireOutcome};
    use cp_net::{ClientConfig, EngineHandler, NdjsonClient, NdjsonServer};

    let engine = Arc::new(engine(system, BackendKind::ThreadPool, workers));
    let server = NdjsonServer::bind("127.0.0.1:0", 4).expect("loopback bind");
    let addr = server.local_addr().to_string();
    let handle = server.spawn(Arc::new(EngineHandler::new(engine)));

    let mut client = NdjsonClient::connect(&addr, ClientConfig::default()).expect("loopback dial");
    // Pipelined: write every envelope, then drain every reply (ids
    // correlate; order is not asserted — that is the protocol).
    let started = Instant::now();
    for (i, request) in batch(cfg).into_iter().enumerate() {
        client
            .send(&RequestEnvelope {
                id: serde_json::to_value(&(i as u64)),
                tenant: None,
                request,
            })
            .expect("request sent");
    }
    for _ in 0..BATCH {
        let reply = client.recv().expect("reply received");
        assert!(
            matches!(reply.outcome, WireOutcome::Ok(_)),
            "pipelined TCP request failed"
        );
    }
    let pipelined_ms = started.elapsed().as_secs_f64() * 1e3;

    // Sequential: a strict request→response loop, the per-call
    // latency floor including serialization both ways.
    let started = Instant::now();
    for (i, request) in batch(cfg).into_iter().enumerate() {
        let reply = client
            .call(&RequestEnvelope {
                id: serde_json::to_value(&(i as u64)),
                tenant: None,
                request,
            })
            .expect("call round-trips");
        assert!(
            matches!(reply.outcome, WireOutcome::Ok(_)),
            "sequential TCP request failed"
        );
    }
    let sequential_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(client);
    handle.shutdown();
    (pipelined_ms, sequential_ms)
}

/// Locates a workspace binary next to this bench executable (they
/// share a target directory) so the router sweep can run real
/// processes; `None` skips the sweep gracefully.
fn sibling_binary(name: &str) -> Option<std::path::PathBuf> {
    if let Ok(path) = std::env::var(format!(
        "CHATPATTERN_{}_BIN",
        name.replace('-', "_").to_uppercase()
    )) {
        let path = std::path::PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let path = std::env::current_exe().ok()?.with_file_name(name);
    path.is_file().then_some(path)
}

/// The Generate batch pipelined through a real spawned router fleet
/// (`workers` serve processes). Measures only the request phase —
/// worker spawn + model training happen before the clock starts.
/// Returns the elapsed milliseconds, or an error string to report.
fn run_router_fanout(cfg: &BenchConfig, workers: usize) -> Result<f64, String> {
    use chatpattern_core::wire::{RequestEnvelope, WireOutcome};
    use cp_net::{ClientConfig, NdjsonClient};
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let router = sibling_binary("chatpattern-router").ok_or("chatpattern-router not built")?;
    let serve = sibling_binary("chatpattern-serve").ok_or("chatpattern-serve not built")?;
    let mut command = Command::new(router);
    command.args([
        "--listen",
        "127.0.0.1:0",
        "--workers",
        &workers.to_string(),
        "--serve-bin",
    ]);
    command.arg(serve);
    for arg in [
        "--window",
        &cfg.window.to_string(),
        "--training-patterns",
        &cfg.train.to_string(),
        "--diffusion-steps",
        &cfg.steps.to_string(),
        "--workers",
        "2",
        "--seed",
        &cfg.seed.to_string(),
    ] {
        command.args(["--serve-arg", arg]);
    }
    let mut child = command
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("router spawn failed: {e}"))?;
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("chatpattern-router: listening on ") {
                    break addr.trim().to_owned();
                }
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("router exited before announcing its address".to_owned());
            }
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});

    let result = (|| {
        let mut client = NdjsonClient::connect(&addr, ClientConfig::default())
            .map_err(|e| format!("router dial failed: {e}"))?;
        let started = Instant::now();
        for (i, request) in batch(cfg).into_iter().enumerate() {
            client
                .send(&RequestEnvelope {
                    id: serde_json::to_value(&(i as u64)),
                    tenant: None,
                    request,
                })
                .map_err(|e| format!("router send failed: {e}"))?;
        }
        for _ in 0..BATCH {
            let reply = client
                .recv()
                .map_err(|e| format!("router recv failed: {e}"))?;
            if !matches!(reply.outcome, WireOutcome::Ok(_)) {
                return Err("router request errored".to_owned());
            }
        }
        let millis = started.elapsed().as_secs_f64() * 1e3;
        // Graceful teardown takes the spawned workers down too.
        let _ = client.send_line(r#"{"id":"bench-bye","control":"Shutdown"}"#);
        let _ = client.recv_line();
        Ok(millis)
    })();
    if result.is_err() {
        let _ = child.kill();
    }
    let _ = child.wait();
    result
}

/// One `connection_scaling` measurement.
#[cfg(unix)]
struct ConnScale {
    p50_ms: f64,
    p99_ms: f64,
    /// Idle connections that still answered a request after the
    /// active burst (the "sustained" proof).
    sustained: usize,
    /// The engine's peak concurrent-connection counter for the run.
    peak: u64,
}

/// C idle + K active connections against an in-process loopback serve:
/// open `idle` connections that sit silent through the measurement,
/// then run `active` connections each doing `calls` strictly
/// sequential Stats round-trips (cheap engine work, so the latency is
/// transport + submit-path overhead — exactly what grows with the
/// connection count). Afterwards every idle connection is pinged once;
/// the count that still answers is the sustained-connection proof.
/// The thread transport runs at its `DEFAULT_MAX_CONNECTIONS` cap; the
/// event loop at its own (4096) default.
#[cfg(unix)]
fn run_connection_scaling(
    system: &Arc<ChatPattern>,
    workers: usize,
    event_loop: bool,
    idle: usize,
    active: usize,
    calls: usize,
) -> Result<ConnScale, String> {
    use chatpattern_core::wire::{RequestEnvelope, WireOutcome};
    use cp_net::{ClientConfig, EngineHandler, NdjsonClient};

    let engine = Arc::new(engine(system, BackendKind::ThreadPool, workers));
    let counters = engine.conn_counters();
    let handler = Arc::new(EngineHandler::new(Arc::clone(&engine)));
    enum Server {
        Threads(cp_net::ServerHandle),
        EventLoop(cp_net::EventLoopHandle),
    }
    let (addr, server) = if event_loop {
        let server =
            cp_net::EventLoopServer::bind("127.0.0.1:0", cp_net::EventLoopConfig::default())
                .map_err(|e| format!("event-loop bind failed: {e}"))?
                .conn_counters(counters);
        let addr = server.local_addr().to_string();
        let handle = server
            .spawn(handler)
            .map_err(|e| format!("event-loop spawn failed: {e}"))?;
        (addr, Server::EventLoop(handle))
    } else {
        let server = cp_net::NdjsonServer::bind("127.0.0.1:0", cp_net::DEFAULT_MAX_CONNECTIONS)
            .map_err(|e| format!("thread-server bind failed: {e}"))?
            .conn_counters(counters);
        let addr = server.local_addr().to_string();
        (addr, Server::Threads(server.spawn(handler)))
    };

    let config = ClientConfig::default();
    let mut idle_conns = Vec::with_capacity(idle);
    for i in 0..idle {
        idle_conns.push(
            NdjsonClient::connect(&addr, config.clone())
                .map_err(|e| format!("idle connect {i} failed: {e}"))?,
        );
    }

    let threads: Vec<_> = (0..active)
        .map(|conn| {
            let addr = addr.clone();
            let config = config.clone();
            std::thread::spawn(move || -> Result<Vec<f64>, String> {
                let mut client = NdjsonClient::connect(&addr, config)
                    .map_err(|e| format!("active connect failed: {e}"))?;
                let mut samples = Vec::with_capacity(calls);
                for call in 0..calls {
                    let started = Instant::now();
                    let reply = client
                        .call(&RequestEnvelope {
                            id: serde_json::to_value(&((conn * calls + call) as u64)),
                            tenant: None,
                            request: PatternRequest::Stats,
                        })
                        .map_err(|e| format!("active call failed: {e}"))?;
                    if !matches!(reply.outcome, WireOutcome::Ok(_)) {
                        return Err("active request errored".to_owned());
                    }
                    samples.push(started.elapsed().as_secs_f64() * 1e3);
                }
                Ok(samples)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(active * calls);
    for thread in threads {
        latencies.extend(thread.join().expect("active connection thread")?);
    }
    latencies.sort_by(f64::total_cmp);
    let p50_ms = latencies[latencies.len() / 2];
    let p99_ms = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];

    let mut sustained = 0usize;
    for (i, client) in idle_conns.iter_mut().enumerate() {
        let answered = client
            .call(&RequestEnvelope {
                id: serde_json::to_value(&(1_000_000 + i as u64)),
                tenant: None,
                request: PatternRequest::Stats,
            })
            .map(|reply| matches!(reply.outcome, WireOutcome::Ok(_)))
            .unwrap_or(false);
        sustained += usize::from(answered);
    }
    let peak = engine.stats().connections_peak;
    drop(idle_conns);
    match server {
        Server::Threads(handle) => handle.shutdown(),
        Server::EventLoop(handle) => handle.shutdown(),
    }
    Ok(ConnScale {
        p50_ms,
        p99_ms,
        sustained,
        peak,
    })
}

fn sweep(var: &str, default: &str) -> Vec<usize> {
    std::env::var(var)
        .unwrap_or_else(|_| default.to_owned())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

/// `--check` mode options.
struct CheckMode {
    threshold: f64,
    baseline: String,
}

fn parse_check_args() -> Option<CheckMode> {
    let mut args = std::env::args().skip(1);
    let mut check = false;
    let mut threshold = 1.5;
    let mut baseline = "BENCH_ENGINE.json".to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--threshold" => {
                threshold = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a number");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                baseline = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: engine_scaling \
                     [--check [--threshold FACTOR] [--baseline PATH]]"
                );
                std::process::exit(2);
            }
        }
    }
    check.then_some(CheckMode {
        threshold,
        baseline,
    })
}

/// Flattens every `*millis` number in a result tree into
/// `(path, value)` pairs; array elements are identified by their
/// descriptive fields (backend, workers, …) so rows match across runs
/// even when their order changes.
fn collect_millis(prefix: &str, value: &serde_json::Value, out: &mut Vec<(String, f64)>) {
    const IDENTITY_KEYS: [&str; 8] = [
        "backend",
        "workers",
        "shards",
        "sessions",
        "turns_per_session",
        "tenant",
        "transport",
        "connections",
    ];
    match value {
        serde_json::Value::Object(map) => {
            for (key, field) in map {
                if let Some(number) = field.as_f64() {
                    if key.ends_with("millis") {
                        out.push((format!("{prefix}{key}"), number));
                    }
                } else {
                    collect_millis(&format!("{prefix}{key}."), field, out);
                }
            }
        }
        serde_json::Value::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                let label = item
                    .as_object()
                    .map(|map| {
                        IDENTITY_KEYS
                            .iter()
                            .filter_map(|k| {
                                map.get(*k).map(|v| {
                                    let text = v
                                        .as_str()
                                        .map(str::to_owned)
                                        .or_else(|| v.as_f64().map(|n| n.to_string()))
                                        .unwrap_or_default();
                                    format!("{k}={text}")
                                })
                            })
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .filter(|label| !label.is_empty())
                    .unwrap_or_else(|| index.to_string());
                collect_millis(&format!("{prefix}[{label}]."), item, out);
            }
        }
        _ => {}
    }
}

/// Compares the freshly-measured results against the committed
/// baseline. Returns `true` when the run passes (no metric slower
/// than `threshold ×` its baseline, or config-mismatch advisory).
fn check_against_baseline(current_json: &str, mode: &CheckMode) -> bool {
    let baseline_text = match std::fs::read_to_string(&mode.baseline) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "check FAILED: cannot read baseline {}: {error}",
                mode.baseline
            );
            return false;
        }
    };
    let baseline: serde_json::Value = match serde_json::from_str(&baseline_text) {
        Ok(value) => value,
        Err(_) => {
            eprintln!("check FAILED: baseline {} is not valid JSON", mode.baseline);
            return false;
        }
    };
    let current: serde_json::Value =
        serde_json::from_str(current_json).expect("own results are valid JSON");

    // A baseline recorded at another scale (or host) still prints the
    // ratios, but only a same-config comparison can fail the build.
    let config_matches = ["batch", "window", "steps", "train", "cpus"]
        .iter()
        .all(|key| {
            baseline.get(key).and_then(|v| v.as_u64()) == current.get(key).and_then(|v| v.as_u64())
        });
    if !config_matches {
        println!(
            "check: baseline config differs from this run — ratios are advisory, \
             the check cannot fail"
        );
    }

    let mut baseline_metrics = Vec::new();
    collect_millis("", &baseline, &mut baseline_metrics);
    let mut current_metrics = Vec::new();
    collect_millis("", &current, &mut current_metrics);
    let current_by_path: std::collections::HashMap<&str, f64> = current_metrics
        .iter()
        .map(|(path, value)| (path.as_str(), *value))
        .collect();

    println!(
        "\nregression check vs {} (threshold {:.2}x):",
        mode.baseline, mode.threshold
    );
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (path, base) in &baseline_metrics {
        let Some(now) = current_by_path.get(path.as_str()) else {
            println!("  {path:<60} skipped (not measured in this run)");
            continue;
        };
        compared += 1;
        let ratio = if *base > 0.0 { now / base } else { 1.0 };
        let verdict = if ratio <= mode.threshold {
            "ok"
        } else {
            regressions += 1;
            "REGRESSION"
        };
        println!("  {path:<60} {now:9.1} ms vs {base:9.1} ms  {ratio:5.2}x  {verdict}");
    }
    println!(
        "check: {compared} metrics compared, {regressions} over {:.2}x",
        mode.threshold
    );

    // Staleness: a series this bench emits but the baseline lacks is
    // unguarded — new sweeps would silently escape the gate forever.
    // Only a same-config baseline can be declared stale (a skipped
    // sweep on another host is not staleness).
    let baseline_paths: std::collections::HashSet<&str> = baseline_metrics
        .iter()
        .map(|(path, _)| path.as_str())
        .collect();
    let mut stale = 0usize;
    for (path, _) in &current_metrics {
        if !baseline_paths.contains(path.as_str()) {
            println!("  {path:<60} MISSING from baseline");
            stale += 1;
        }
    }
    if stale > 0 {
        eprintln!(
            "check: STALE baseline — {stale} metric(s) measured by this bench are \
             absent from {}; regenerate it by running engine_scaling without --check \
             and committing the new file",
            mode.baseline
        );
    }
    (regressions == 0 && stale == 0) || !config_matches
}

fn main() {
    let check = parse_check_args();
    let cfg = BenchConfig::from_env();
    cfg.print_banner("Engine scaling: serial vs. inline/threadpool/sharded backends");
    let worker_sweep = sweep("CP_ENGINE_WORKERS", "2,4,8");
    let shard_sweep = sweep("CP_ENGINE_SHARDS", "2,4");
    let max_workers = worker_sweep.iter().copied().max().unwrap_or(4);

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let system = Arc::new(cfg.build_system());
    // Warm-up pass so page faults and lazy init don't bias `serial`.
    let _ = system.execute_many(batch(&cfg));
    let serial_ms = run_serial(&system, &cfg);
    println!(
        "{BATCH}-request Generate batch, window {}, {cpus} CPU(s):",
        cfg.window
    );
    println!("  serial                    {serial_ms:9.1} ms   1.00x");

    let mut rows = String::new();
    let mut record = |label: &str, backend: &str, workers: usize, shards: usize, millis: f64| {
        let speedup = serial_ms / millis;
        println!("  {label:<25} {millis:9.1} ms   {speedup:.2}x");
        let _ = write!(
            rows,
            "{}{{\"backend\":\"{backend}\",\"workers\":{workers},\"shards\":{shards},\
             \"millis\":{millis:.3},\"speedup\":{speedup:.3}}}",
            if rows.is_empty() { "" } else { "," }
        );
    };

    let inline_ms = run_backend(&system, &cfg, BackendKind::Inline, 1);
    record("inline", "inline", 0, 0, inline_ms);
    for &workers in &worker_sweep {
        let ms = run_backend(&system, &cfg, BackendKind::ThreadPool, workers);
        record(
            &format!("threadpool {workers:2} workers"),
            "threadpool",
            workers,
            0,
            ms,
        );
    }
    for &shards in &shard_sweep {
        let ms = run_backend(&system, &cfg, BackendKind::Sharded { shards }, max_workers);
        record(
            &format!("sharded {shards} shards/{max_workers} wrk"),
            "sharded",
            max_workers,
            shards,
            ms,
        );
    }

    let (burst_ms, coalesced) = run_coalescing(&system, &cfg, max_workers);
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = coalesced as f64 / BATCH as f64;
    println!(
        "  coalescing burst ({UNIQUE} unique) {burst_ms:7.1} ms   \
         {coalesced}/{BATCH} coalesced ({:.0}%)",
        hit_rate * 100.0
    );

    // Microbatch burst: the same-shape different-seed workload the
    // drain stage fuses into one `sample_batch` call, vs. the same
    // burst forced solo. Single worker so the fused-vs-serial delta is
    // the batched denoiser itself, not thread-level parallelism.
    const MICROBATCH_BURST: usize = 8;
    let (solo_ms, _) = run_microbatch(&system, &cfg, MICROBATCH_BURST, 1);
    let (fused_ms, fused_jobs) = run_microbatch(&system, &cfg, MICROBATCH_BURST, MICROBATCH_BURST);
    let microbatch_speedup = solo_ms / fused_ms;
    println!(
        "  microbatch {MICROBATCH_BURST}-burst fused  {fused_ms:9.1} ms   \
         {microbatch_speedup:.2}x vs {solo_ms:.1} ms solo ({fused_jobs} jobs fused)"
    );
    let (unet_solo_ms, unet_fused_ms) = run_unet_burst(&cfg, MICROBATCH_BURST);
    let unet_speedup = unet_solo_ms / unet_fused_ms;
    println!(
        "  unet {MICROBATCH_BURST}-burst fused        {unet_fused_ms:9.1} ms   \
         {unet_speedup:.2}x vs {unet_solo_ms:.1} ms serial"
    );

    // Session sweep: the stateful multi-turn workload, threadpool vs.
    // session-affine sharded routing.
    let n_sessions = sweep("CP_ENGINE_SESSIONS", "4")
        .first()
        .copied()
        .unwrap_or(4);
    let n_turns = sweep("CP_ENGINE_TURNS", "4").first().copied().unwrap_or(4);
    let session_workers = max_workers.max(n_sessions.min(4));
    let session_shards = n_sessions.min(session_workers).max(1);
    let mut session_rows = String::new();
    for (label, backend, shards) in [
        ("threadpool", BackendKind::ThreadPool, 0usize),
        (
            "sharded",
            BackendKind::Sharded {
                shards: session_shards,
            },
            session_shards,
        ),
    ] {
        let millis =
            run_session_turns(&system, &cfg, backend, session_workers, n_sessions, n_turns);
        #[allow(clippy::cast_precision_loss)]
        let turns_per_sec = (n_sessions * n_turns) as f64 / (millis / 1e3);
        println!(
            "  session_turns {label:<10} {millis:9.1} ms   \
             {n_sessions} sessions x {n_turns} turns, {turns_per_sec:.1} turns/s"
        );
        let _ = write!(
            session_rows,
            "{}{{\"backend\":\"{label}\",\"workers\":{session_workers},\"shards\":{shards},\
             \"sessions\":{n_sessions},\"turns_per_session\":{n_turns},\
             \"millis\":{millis:.3},\"turns_per_sec\":{turns_per_sec:.3}}}",
            if session_rows.is_empty() { "" } else { "," }
        );
    }

    // Spill/rehydrate sweep: twice the sessions, half the capacity —
    // every round-robin turn lands on a spilled session, so the delta
    // vs. `session_turns` is the durability overhead itself.
    let spill_sessions = (n_sessions * 2).max(4);
    let spill_capacity = (spill_sessions / 2).max(1);
    let (spill_ms, spilled, restored) = run_session_spill(
        &cfg,
        spill_capacity,
        spill_sessions,
        n_turns,
        session_workers,
    );
    #[allow(clippy::cast_precision_loss)]
    let spill_turns_per_sec = (spill_sessions * n_turns) as f64 / (spill_ms / 1e3);
    println!(
        "  session_spill_rehydrate   {spill_ms:9.1} ms   \
         {spill_sessions} sessions over capacity {spill_capacity}, {n_turns} turns each, \
         {spill_turns_per_sec:.1} turns/s ({spilled} spilled, {restored} restored)"
    );

    // Durability sweep: spill-ahead on every turn over a sharded
    // on-disk store (per-turn durable-write cost), then the restart
    // path — one lazy rehydrate turn per session over the same
    // directory.
    let durability_shards = 4usize;
    let (durable_turn_ms, restart_ms, spilled_ahead, bytes_saved) = run_session_durability(
        &cfg,
        spill_sessions,
        n_turns,
        durability_shards,
        session_workers,
    );
    #[allow(clippy::cast_precision_loss)]
    let durable_turns_per_sec = (spill_sessions * n_turns) as f64 / (durable_turn_ms / 1e3);
    println!(
        "  session_durability turns  {durable_turn_ms:9.1} ms   \
         {spill_sessions} sessions x {n_turns} turns, spill-ahead every turn over \
         {durability_shards} shards, {durable_turns_per_sec:.1} turns/s \
         ({spilled_ahead} spilled ahead, {bytes_saved} B compacted away)"
    );
    println!(
        "  session_durability restart{restart_ms:9.1} ms   \
         {spill_sessions} sessions rehydrated lazily after the restart"
    );

    // TCP loopback: same batch, same engine backend, plus the wire.
    let (tcp_pipelined_ms, tcp_sequential_ms) = run_tcp_round_trip(&system, &cfg, max_workers);
    #[allow(clippy::cast_precision_loss)]
    let tcp_pipelined_rps = BATCH as f64 / (tcp_pipelined_ms / 1e3);
    #[allow(clippy::cast_precision_loss)]
    let tcp_sequential_rps = BATCH as f64 / (tcp_sequential_ms / 1e3);
    println!(
        "  tcp_round_trip pipelined  {tcp_pipelined_ms:9.1} ms   {tcp_pipelined_rps:.1} req/s"
    );
    println!(
        "  tcp_round_trip sequential {tcp_sequential_ms:9.1} ms   {tcp_sequential_rps:.1} req/s"
    );

    // Router fan-out: real processes; skipped when the binaries are
    // not in this target directory.
    let mut router_rows = String::new();
    for &fleet in &sweep("CP_ROUTER_WORKERS", "1,2") {
        match run_router_fanout(&cfg, fleet) {
            Ok(millis) => {
                #[allow(clippy::cast_precision_loss)]
                let rps = BATCH as f64 / (millis / 1e3);
                println!(
                    "  router_fanout {fleet} worker(s) {millis:8.1} ms   {rps:.1} req/s \
                     (spawned fleet)"
                );
                let _ = write!(
                    router_rows,
                    "{}{{\"workers\":{fleet},\"millis\":{millis:.3},\
                     \"requests_per_sec\":{rps:.3}}}",
                    if router_rows.is_empty() { "" } else { "," }
                );
            }
            Err(reason) => {
                println!("  router_fanout {fleet} worker(s)   skipped: {reason}");
            }
        }
    }

    // Connection scaling: C idle + K active connections, thread
    // transport at its 64-connection cap vs. the event loop up to
    // 1024. The sustained count proves every idle connection still
    // answers after the active burst.
    let mut conn_rows = String::new();
    let conn_active = sweep("CP_CONN_ACTIVE", "4").first().copied().unwrap_or(4);
    let conn_calls = sweep("CP_CONN_CALLS", "25").first().copied().unwrap_or(25);
    let thread_cap = cp_net::DEFAULT_MAX_CONNECTIONS;
    #[cfg(unix)]
    {
        cp_net::raise_nofile_limit();
        let loop_idle = sweep("CP_CONN_IDLE", "32,256,512,1024");
        // `sweep` drops zeros, so the thread transport's idle list is
        // fixed: bare active conns, then idle near its 64-conn cap.
        let sweeps: [(&str, bool, Vec<usize>); 2] = [
            ("threads", false, vec![0, 32]),
            ("event-loop", true, loop_idle),
        ];
        for (transport, event_loop, idles) in sweeps {
            for &idle in &idles {
                let total = idle + conn_active;
                match run_connection_scaling(
                    &system,
                    max_workers,
                    event_loop,
                    idle,
                    conn_active,
                    conn_calls,
                ) {
                    Ok(scale) => {
                        println!(
                            "  connection_scaling {transport:<10} {total:5} conns   \
                             p50 {:7.2} ms  p99 {:7.2} ms  ({}/{idle} idle sustained)",
                            scale.p50_ms, scale.p99_ms, scale.sustained
                        );
                        let _ = write!(
                            conn_rows,
                            "{}{{\"transport\":\"{transport}\",\"connections\":{total},\
                             \"idle\":{idle},\"active\":{conn_active},\
                             \"sustained\":{},\"peak_connections\":{},\
                             \"p50_millis\":{:.3},\"p99_millis\":{:.3}}}",
                            if conn_rows.is_empty() { "" } else { "," },
                            scale.sustained,
                            scale.peak,
                            scale.p50_ms,
                            scale.p99_ms,
                        );
                    }
                    Err(reason) => {
                        println!(
                            "  connection_scaling {transport:<10} {total:5} conns   \
                             skipped: {reason}"
                        );
                    }
                }
            }
        }
    }

    // Hot loops: the three measured inner loops on their own, no
    // engine in the way — regressions here are what the surgery fixed.
    const HOT_RECTS: usize = 192;
    const HOT_REPS: usize = 10;
    let (union_ms, encode_ms, legalize_ms, hot_rows, hot_cols) =
        run_hot_loops(&cfg, HOT_RECTS, HOT_REPS);
    println!(
        "  hot_loops union_area      {union_ms:9.1} ms   \
         {HOT_REPS} reps, {HOT_RECTS} rects, {hot_rows}x{hot_cols} grid"
    );
    println!("  hot_loops squish_encode   {encode_ms:9.1} ms   {HOT_REPS} reps");
    println!("  hot_loops legalize        {legalize_ms:9.1} ms   {HOT_REPS} reps");

    if cpus == 1 {
        println!(
            "\nnote: this host exposes a single CPU, so the threaded numbers measure\n\
             per-job engine overhead (serial/backend delta ÷ {BATCH}), not scaling;\n\
             speedups > 1 require a multi-core host."
        );
    }

    let json = format!(
        "{{\"bench\":\"engine_scaling\",\"batch\":{BATCH},\"window\":{},\"steps\":{},\
         \"train\":{},\"cpus\":{cpus},\"serial_millis\":{serial_ms:.3},\"backends\":[{rows}],\
         \"coalescing\":{{\"submitted\":{BATCH},\"unique\":{UNIQUE},\"coalesced\":{coalesced},\
         \"hit_rate\":{hit_rate:.3},\"millis\":{burst_ms:.3}}},\
         \"session_turns\":[{session_rows}],\
         \"session_spill_rehydrate\":{{\"sessions\":{spill_sessions},\
         \"capacity\":{spill_capacity},\"turns_per_session\":{n_turns},\
         \"workers\":{session_workers},\"spilled\":{spilled},\"restored\":{restored},\
         \"millis\":{spill_ms:.3},\"turns_per_sec\":{spill_turns_per_sec:.3}}},\
         \"session_durability\":{{\"sessions\":{spill_sessions},\
         \"turns_per_session\":{n_turns},\"shards\":{durability_shards},\
         \"workers\":{session_workers},\"spilled_ahead\":{spilled_ahead},\
         \"snapshot_bytes_saved\":{bytes_saved},\
         \"turn_millis\":{durable_turn_ms:.3},\
         \"turns_per_sec\":{durable_turns_per_sec:.3},\
         \"restart_rehydrate_millis\":{restart_ms:.3}}},\
         \"tcp_round_trip\":{{\"requests\":{BATCH},\"workers\":{max_workers},\
         \"pipelined_millis\":{tcp_pipelined_ms:.3},\
         \"pipelined_requests_per_sec\":{tcp_pipelined_rps:.3},\
         \"sequential_millis\":{tcp_sequential_ms:.3},\
         \"sequential_requests_per_sec\":{tcp_sequential_rps:.3}}},\
         \"router_fanout\":[{router_rows}],\
         \"connection_scaling\":{{\"active\":{conn_active},\
         \"calls_per_conn\":{conn_calls},\
         \"thread_cap\":{thread_cap},\"rows\":[{conn_rows}]}},\
         \"microbatch\":{{\"burst\":{MICROBATCH_BURST},\"workers\":1,\
         \"solo_millis\":{solo_ms:.3},\"fused_millis\":{fused_ms:.3},\
         \"speedup\":{microbatch_speedup:.3},\"fused_jobs\":{fused_jobs},\
         \"unet_solo_millis\":{unet_solo_ms:.3},\"unet_fused_millis\":{unet_fused_ms:.3},\
         \"unet_speedup\":{unet_speedup:.3}}},\
         \"hot_loops\":{{\"rects\":{HOT_RECTS},\"reps\":{HOT_REPS},\
         \"grid_rows\":{hot_rows},\"grid_cols\":{hot_cols},\
         \"union_area_millis\":{union_ms:.3},\
         \"squish_encode_millis\":{encode_ms:.3},\
         \"legalize_millis\":{legalize_ms:.3}}}}}\n",
        cfg.window, cfg.steps, cfg.train
    );
    match check {
        None => {
            std::fs::write("BENCH_ENGINE.json", &json).expect("write BENCH_ENGINE.json");
            println!("\nwrote BENCH_ENGINE.json");
        }
        Some(mode) => {
            if !check_against_baseline(&json, &mode) {
                std::process::exit(1);
            }
        }
    }
}
