//! Engine scaling: serial `execute_many` vs. every execution backend
//! (inline, thread pool at several worker counts, sharded) on a
//! 32-request Generate batch, plus a duplicate-request burst measuring
//! the in-flight coalescing hit rate, a `session_turns` sweep (N
//! concurrent chat sessions × M turns each, threadpool vs. sharded
//! session-affine routing), and a `session_spill_rehydrate` sweep (N
//! sessions over a smaller store capacity with an in-memory
//! durability layer, so every turn pays a spill + rehydrate — the
//! steady-state cost of durable over-capacity operation). Prints a
//! table and writes `BENCH_ENGINE.json` (in the working directory) so
//! the perf trajectory captures the backend dimension, coalescing and
//! the stateful session workloads.
//!
//! Scale with the usual `CP_*` variables; `CP_ENGINE_WORKERS` is a
//! comma-separated list of thread-pool sizes to sweep (default
//! `2,4,8`) and `CP_ENGINE_SHARDS` the shard counts for the sharded
//! backend (default `2,4`). `CP_ENGINE_SESSIONS` / `CP_ENGINE_TURNS`
//! shape the session sweep (default `4` × `4`).

use chatpattern_core::{
    BackendKind, ChatPattern, EngineConfig, GenerateParams, JobHandle, PatternEngine,
    PatternRequest, PatternService, SessionCloseParams, SessionOpenParams, SessionTurnParams,
};
use cp_bench::BenchConfig;
use cp_dataset::Style;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 32;
/// Distinct requests inside the coalescing burst: 32 submits spread
/// over 4 unique keys → up to 28 coalesced attachments.
const UNIQUE: u64 = 4;

fn batch(cfg: &BenchConfig) -> Vec<PatternRequest> {
    (0..BATCH as u64)
        .map(|seed| {
            PatternRequest::Generate(GenerateParams {
                style: if seed.is_multiple_of(2) {
                    Style::Layer10001
                } else {
                    Style::Layer10003
                },
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed,
            })
        })
        .collect()
}

fn run_serial(system: &ChatPattern, cfg: &BenchConfig) -> f64 {
    let started = Instant::now();
    let results = system.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "serial batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

fn engine(
    system: &Arc<ChatPattern>,
    backend: BackendKind,
    workers: usize,
) -> PatternEngine<Arc<ChatPattern>> {
    PatternEngine::with_config(
        Arc::clone(system),
        EngineConfig {
            backend,
            workers,
            queue_depth: BATCH,
            // Disabled: scaling numbers must measure sampling, not
            // cache replay (in-flight coalescing stays active but the
            // batch has distinct seeds, so it never triggers here).
            cache_capacity: 0,
        },
    )
    .expect("valid engine config")
}

fn run_backend(
    system: &Arc<ChatPattern>,
    cfg: &BenchConfig,
    backend: BackendKind,
    workers: usize,
) -> f64 {
    let engine = engine(system, backend, workers);
    let started = Instant::now();
    let results = engine.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "pooled batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

/// Submits `BATCH` requests cycling through `UNIQUE` distinct seeds,
/// all in flight at once, and reports `(millis, coalesced)`.
fn run_coalescing(system: &Arc<ChatPattern>, cfg: &BenchConfig, workers: usize) -> (f64, u64) {
    let engine = engine(system, BackendKind::ThreadPool, workers);
    let started = Instant::now();
    let handles: Vec<JobHandle> = (0..BATCH as u64)
        .map(|i| {
            engine.submit_blocking(PatternRequest::Generate(GenerateParams {
                style: Style::Layer10001,
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed: i % UNIQUE,
            }))
        })
        .collect();
    for handle in handles {
        handle.wait().expect("burst request completes");
    }
    let millis = started.elapsed().as_secs_f64() * 1e3;
    (millis, engine.stats().coalesced)
}

/// N concurrent sessions × M turns each through one engine: opens the
/// sessions, submits every turn (turns on one session serialize on its
/// session lock; distinct sessions run in parallel — shard-local when
/// sharded), waits for all, closes. Returns elapsed milliseconds.
fn run_session_turns(
    system: &Arc<ChatPattern>,
    cfg: &BenchConfig,
    backend: BackendKind,
    workers: usize,
    sessions: usize,
    turns: usize,
) -> f64 {
    let engine = engine(system, backend, workers);
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );
    // The turn counter lives in the shared system, so measure a delta
    // (this sweep runs once per backend on one system).
    let turns_before = system.session_stats().turns;
    let started = Instant::now();
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionOpen(SessionOpenParams {
                session: format!("bench-{s}"),
                seed: Some(s as u64),
            }))
            .expect("session opens");
    }
    let handles: Vec<JobHandle> = (0..turns)
        .flat_map(|_| 0..sessions)
        .map(|s| {
            engine.submit_blocking(PatternRequest::SessionTurn(SessionTurnParams {
                session: format!("bench-{s}"),
                utterance: utterance.clone(),
            }))
        })
        .collect();
    for handle in handles {
        handle.wait().expect("turn completes");
    }
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionClose(SessionCloseParams {
                session: format!("bench-{s}"),
            }))
            .expect("session closes");
    }
    let stats = engine.stats();
    assert_eq!(
        (stats.turns - turns_before) as usize,
        sessions * turns,
        "every submitted turn executed"
    );
    assert_eq!(stats.coalesced, 0, "session turns never coalesce");
    assert_eq!(stats.cache_hits, 0, "session turns never hit the cache");
    started.elapsed().as_secs_f64() * 1e3
}

/// N sessions over a capacity-limited durable store, M rounds of
/// round-robin turns: with `sessions > capacity` every turn rehydrates
/// a spilled session (and spills another), so the measured time is the
/// steady-state spill+rehydrate overhead. Returns
/// `(millis, spilled, restored)`.
fn run_session_spill(
    cfg: &BenchConfig,
    capacity: usize,
    sessions: usize,
    turns: usize,
    workers: usize,
) -> (f64, u64, u64) {
    // A dedicated system: the spill sweep needs its own (small)
    // session capacity and an in-memory durability layer.
    let system = Arc::new(
        ChatPattern::builder()
            .window(cfg.window)
            .training_patterns(cfg.train)
            .diffusion_steps(cfg.steps)
            .seed(cfg.seed)
            .max_sessions(capacity)
            .session_spill_memory()
            .build()
            .expect("valid spill-sweep configuration"),
    );
    let engine = engine(&system, BackendKind::ThreadPool, workers);
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );
    let started = Instant::now();
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionOpen(SessionOpenParams {
                session: format!("spill-{s}"),
                seed: Some(s as u64),
            }))
            .expect("session opens");
    }
    for _ in 0..turns {
        for s in 0..sessions {
            engine
                .execute(PatternRequest::SessionTurn(SessionTurnParams {
                    session: format!("spill-{s}"),
                    utterance: utterance.clone(),
                }))
                .expect("turn on a (possibly spilled) session succeeds");
        }
    }
    for s in 0..sessions {
        engine
            .execute(PatternRequest::SessionClose(SessionCloseParams {
                session: format!("spill-{s}"),
            }))
            .expect("session closes");
    }
    let millis = started.elapsed().as_secs_f64() * 1e3;
    let stats = engine.stats();
    assert_eq!(
        stats.sessions_evicted, 0,
        "durability must spill, never destroy"
    );
    assert!(
        stats.sessions_spilled > 0 && stats.sessions_restored > 0,
        "an over-capacity sweep must exercise spill + rehydrate"
    );
    (millis, stats.sessions_spilled, stats.sessions_restored)
}

fn sweep(var: &str, default: &str) -> Vec<usize> {
    std::env::var(var)
        .unwrap_or_else(|_| default.to_owned())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.print_banner("Engine scaling: serial vs. inline/threadpool/sharded backends");
    let worker_sweep = sweep("CP_ENGINE_WORKERS", "2,4,8");
    let shard_sweep = sweep("CP_ENGINE_SHARDS", "2,4");
    let max_workers = worker_sweep.iter().copied().max().unwrap_or(4);

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let system = Arc::new(cfg.build_system());
    // Warm-up pass so page faults and lazy init don't bias `serial`.
    let _ = system.execute_many(batch(&cfg));
    let serial_ms = run_serial(&system, &cfg);
    println!(
        "{BATCH}-request Generate batch, window {}, {cpus} CPU(s):",
        cfg.window
    );
    println!("  serial                    {serial_ms:9.1} ms   1.00x");

    let mut rows = String::new();
    let mut record = |label: &str, backend: &str, workers: usize, shards: usize, millis: f64| {
        let speedup = serial_ms / millis;
        println!("  {label:<25} {millis:9.1} ms   {speedup:.2}x");
        let _ = write!(
            rows,
            "{}{{\"backend\":\"{backend}\",\"workers\":{workers},\"shards\":{shards},\
             \"millis\":{millis:.3},\"speedup\":{speedup:.3}}}",
            if rows.is_empty() { "" } else { "," }
        );
    };

    let inline_ms = run_backend(&system, &cfg, BackendKind::Inline, 1);
    record("inline", "inline", 0, 0, inline_ms);
    for &workers in &worker_sweep {
        let ms = run_backend(&system, &cfg, BackendKind::ThreadPool, workers);
        record(
            &format!("threadpool {workers:2} workers"),
            "threadpool",
            workers,
            0,
            ms,
        );
    }
    for &shards in &shard_sweep {
        let ms = run_backend(&system, &cfg, BackendKind::Sharded { shards }, max_workers);
        record(
            &format!("sharded {shards} shards/{max_workers} wrk"),
            "sharded",
            max_workers,
            shards,
            ms,
        );
    }

    let (burst_ms, coalesced) = run_coalescing(&system, &cfg, max_workers);
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = coalesced as f64 / BATCH as f64;
    println!(
        "  coalescing burst ({UNIQUE} unique) {burst_ms:7.1} ms   \
         {coalesced}/{BATCH} coalesced ({:.0}%)",
        hit_rate * 100.0
    );

    // Session sweep: the stateful multi-turn workload, threadpool vs.
    // session-affine sharded routing.
    let n_sessions = sweep("CP_ENGINE_SESSIONS", "4")
        .first()
        .copied()
        .unwrap_or(4);
    let n_turns = sweep("CP_ENGINE_TURNS", "4").first().copied().unwrap_or(4);
    let session_workers = max_workers.max(n_sessions.min(4));
    let session_shards = n_sessions.min(session_workers).max(1);
    let mut session_rows = String::new();
    for (label, backend, shards) in [
        ("threadpool", BackendKind::ThreadPool, 0usize),
        (
            "sharded",
            BackendKind::Sharded {
                shards: session_shards,
            },
            session_shards,
        ),
    ] {
        let millis =
            run_session_turns(&system, &cfg, backend, session_workers, n_sessions, n_turns);
        #[allow(clippy::cast_precision_loss)]
        let turns_per_sec = (n_sessions * n_turns) as f64 / (millis / 1e3);
        println!(
            "  session_turns {label:<10} {millis:9.1} ms   \
             {n_sessions} sessions x {n_turns} turns, {turns_per_sec:.1} turns/s"
        );
        let _ = write!(
            session_rows,
            "{}{{\"backend\":\"{label}\",\"workers\":{session_workers},\"shards\":{shards},\
             \"sessions\":{n_sessions},\"turns_per_session\":{n_turns},\
             \"millis\":{millis:.3},\"turns_per_sec\":{turns_per_sec:.3}}}",
            if session_rows.is_empty() { "" } else { "," }
        );
    }

    // Spill/rehydrate sweep: twice the sessions, half the capacity —
    // every round-robin turn lands on a spilled session, so the delta
    // vs. `session_turns` is the durability overhead itself.
    let spill_sessions = (n_sessions * 2).max(4);
    let spill_capacity = (spill_sessions / 2).max(1);
    let (spill_ms, spilled, restored) = run_session_spill(
        &cfg,
        spill_capacity,
        spill_sessions,
        n_turns,
        session_workers,
    );
    #[allow(clippy::cast_precision_loss)]
    let spill_turns_per_sec = (spill_sessions * n_turns) as f64 / (spill_ms / 1e3);
    println!(
        "  session_spill_rehydrate   {spill_ms:9.1} ms   \
         {spill_sessions} sessions over capacity {spill_capacity}, {n_turns} turns each, \
         {spill_turns_per_sec:.1} turns/s ({spilled} spilled, {restored} restored)"
    );

    if cpus == 1 {
        println!(
            "\nnote: this host exposes a single CPU, so the threaded numbers measure\n\
             per-job engine overhead (serial/backend delta ÷ {BATCH}), not scaling;\n\
             speedups > 1 require a multi-core host."
        );
    }

    let json = format!(
        "{{\"bench\":\"engine_scaling\",\"batch\":{BATCH},\"window\":{},\"steps\":{},\
         \"train\":{},\"cpus\":{cpus},\"serial_millis\":{serial_ms:.3},\"backends\":[{rows}],\
         \"coalescing\":{{\"submitted\":{BATCH},\"unique\":{UNIQUE},\"coalesced\":{coalesced},\
         \"hit_rate\":{hit_rate:.3},\"millis\":{burst_ms:.3}}},\
         \"session_turns\":[{session_rows}],\
         \"session_spill_rehydrate\":{{\"sessions\":{spill_sessions},\
         \"capacity\":{spill_capacity},\"turns_per_session\":{n_turns},\
         \"workers\":{session_workers},\"spilled\":{spilled},\"restored\":{restored},\
         \"millis\":{spill_ms:.3},\"turns_per_sec\":{spill_turns_per_sec:.3}}}}}\n",
        cfg.window, cfg.steps, cfg.train
    );
    std::fs::write("BENCH_ENGINE.json", &json).expect("write BENCH_ENGINE.json");
    println!("\nwrote BENCH_ENGINE.json");
}
