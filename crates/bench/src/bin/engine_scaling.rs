//! Engine scaling: serial vs. pooled `execute_many` on a 32-request
//! Generate batch, at several worker counts. Prints a table and writes
//! `BENCH_ENGINE.json` (in the working directory) so the perf
//! trajectory starts capturing engine scaling run over run.
//!
//! Scale with the usual `CP_*` variables; `CP_ENGINE_WORKERS` is a
//! comma-separated list of pool sizes to sweep (default `2,4,8`).

use chatpattern_core::{
    ChatPattern, EngineConfig, GenerateParams, PatternEngine, PatternRequest, PatternService,
};
use cp_bench::BenchConfig;
use cp_dataset::Style;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 32;

fn batch(cfg: &BenchConfig) -> Vec<PatternRequest> {
    (0..BATCH as u64)
        .map(|seed| {
            PatternRequest::Generate(GenerateParams {
                style: if seed.is_multiple_of(2) {
                    Style::Layer10001
                } else {
                    Style::Layer10003
                },
                rows: cfg.window,
                cols: cfg.window,
                count: 1,
                seed,
            })
        })
        .collect()
}

fn run_serial(system: &ChatPattern, cfg: &BenchConfig) -> f64 {
    let started = Instant::now();
    let results = system.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "serial batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

fn run_pooled(system: &Arc<ChatPattern>, cfg: &BenchConfig, workers: usize) -> f64 {
    let engine = PatternEngine::with_config(
        Arc::clone(system),
        EngineConfig {
            workers,
            queue_depth: BATCH,
            // Disabled: scaling numbers must measure sampling, not
            // cache replay.
            cache_capacity: 0,
        },
    )
    .expect("valid engine config");
    let started = Instant::now();
    let results = engine.execute_many(batch(cfg));
    assert!(results.iter().all(Result::is_ok), "pooled batch failed");
    started.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.print_banner("Engine scaling: serial vs. pooled execute_many");
    let sweep: Vec<usize> = std::env::var("CP_ENGINE_WORKERS")
        .unwrap_or_else(|_| "2,4,8".to_owned())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect();

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let system = Arc::new(cfg.build_system());
    // Warm-up pass so page faults and lazy init don't bias `serial`.
    let _ = system.execute_many(batch(&cfg));
    let serial_ms = run_serial(&system, &cfg);
    println!(
        "{BATCH}-request Generate batch, window {}, {cpus} CPU(s):",
        cfg.window
    );
    println!("  serial            {serial_ms:9.1} ms   1.00x");

    let mut rows = String::new();
    for &workers in &sweep {
        let pooled_ms = run_pooled(&system, &cfg, workers);
        let speedup = serial_ms / pooled_ms;
        println!("  pooled {workers:2} workers {pooled_ms:9.1} ms   {speedup:.2}x");
        let _ = write!(
            rows,
            "{}{{\"workers\":{workers},\"millis\":{pooled_ms:.3},\"speedup\":{speedup:.3}}}",
            if rows.is_empty() { "" } else { "," }
        );
    }

    if cpus == 1 {
        println!(
            "\nnote: this host exposes a single CPU, so the pooled numbers measure\n\
             per-job engine overhead (serial/pooled delta ÷ {BATCH}), not scaling;\n\
             speedups > 1 require a multi-core host."
        );
    }

    let json = format!(
        "{{\"bench\":\"engine_scaling\",\"batch\":{BATCH},\"window\":{},\"steps\":{},\
         \"train\":{},\"cpus\":{cpus},\"serial_millis\":{serial_ms:.3},\"pooled\":[{rows}]}}\n",
        cfg.window, cfg.steps, cfg.train
    );
    std::fs::write("BENCH_ENGINE.json", &json).expect("write BENCH_ENGINE.json");
    println!("\nwrote BENCH_ENGINE.json");
}
