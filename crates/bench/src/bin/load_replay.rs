//! `cp_load` — replay load generator proving the multi-tenant QoS
//! subsystem end to end. Spawns a real `chatpattern-router` fleet
//! (release binaries from this target directory) with a per-tenant
//! in-flight quota and weighted lane credits, then replays a
//! synthetic mixed workload over TCP: every tenant runs a multi-turn
//! chat session (interactive lane), pipelined generate/extend/
//! legalize bursts (standard lane) and a closing library evaluation
//! (batch lane), with the per-tenant operation counts skewed by a
//! Zipf distribution so heavy tenants overrun their quota while
//! light tenants stay inside it. Typed `Overloaded` / `QueueFull`
//! rejections are retried after their `retry_after_ms` hint — the
//! generator is a well-behaved client of the back-pressure contract.
//!
//! Records per-tenant p50/p95/p99 latency, rejection counts, a Jain
//! fairness index over per-tenant mean service rates, and the
//! fleet-merged per-tenant stats rows into `BENCH_ENGINE.json`
//! (merged into the existing file next to `engine_scaling`'s sweeps).
//!
//! Scale with `CP_WINDOW`/`CP_TRAIN`/`CP_STEPS` (model size) and:
//! `CP_LOAD_TENANTS` (default 4), `CP_LOAD_OPS` (total standard-lane
//! burst operations across tenants, default 36), `CP_LOAD_BURST`
//! (pipelined burst size, default 6), `CP_LOAD_ZIPF` (skew exponent,
//! default 1.0), `CP_LOAD_WORKERS` (fleet size, default 2),
//! `CP_LOAD_TURNS` (session turns per tenant, default 2),
//! `CP_LOAD_QUOTA` (default-tenant quota spec, default `inflight=3`),
//! `CP_LOAD_LANE_WEIGHTS` (default `4,2,1`).

use chatpattern_core::qos::{jain_index, DEFAULT_RETRY_AFTER_MS, DEFAULT_TENANT};
use chatpattern_core::wire::{RequestEnvelope, ResponseEnvelope, WireOutcome};
use chatpattern_core::{
    EngineStats, EvaluateParams, ExtendParams, GenerateParams, LegalizeParams, PatternRequest,
    ResponsePayload, SessionCloseParams, SessionOpenParams, SessionTurnParams,
};
use cp_bench::BenchConfig;
use cp_dataset::Style;
use cp_extend::ExtensionMethod;
use cp_net::{ClientConfig, NdjsonClient};
use cp_squish::Topology;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Hard cap on re-submissions of one operation: a quota that never
/// frees is a bug, not back-pressure, and must fail loudly.
const MAX_RETRIES_PER_OP: usize = 1000;

struct LoadConfig {
    tenants: usize,
    total_ops: usize,
    burst: usize,
    zipf: f64,
    fleet_workers: usize,
    turns: usize,
    quota: String,
    lane_weights: String,
}

impl LoadConfig {
    fn from_env() -> LoadConfig {
        let get = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        LoadConfig {
            tenants: get("CP_LOAD_TENANTS", 4).max(1),
            total_ops: get("CP_LOAD_OPS", 36).max(1),
            burst: get("CP_LOAD_BURST", 6).max(1),
            zipf: std::env::var("CP_LOAD_ZIPF")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            fleet_workers: get("CP_LOAD_WORKERS", 2).max(1),
            turns: get("CP_LOAD_TURNS", 2),
            quota: std::env::var("CP_LOAD_QUOTA").unwrap_or_else(|_| "inflight=3".to_owned()),
            lane_weights: std::env::var("CP_LOAD_LANE_WEIGHTS")
                .unwrap_or_else(|_| "4,2,1".to_owned()),
        }
    }

    /// Zipf allocation of the standard-lane burst budget: tenant `i`
    /// gets a share proportional to `1 / (i + 1)^zipf`, at least 1.
    fn allocate_ops(&self) -> Vec<usize> {
        let weights: Vec<f64> = (0..self.tenants)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf))
            .collect();
        let sum: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| (((self.total_ops as f64) * w / sum).round() as usize).max(1))
            .collect()
    }
}

/// Locates a workspace binary next to this executable (they share a
/// target directory); `CHATPATTERN_<NAME>_BIN` overrides.
fn sibling_binary(name: &str) -> Option<std::path::PathBuf> {
    if let Ok(path) = std::env::var(format!(
        "CHATPATTERN_{}_BIN",
        name.replace('-', "_").to_uppercase()
    )) {
        let path = std::path::PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let path = std::env::current_exe().ok()?.with_file_name(name);
    path.is_file().then_some(path)
}

/// Spawns the router fleet with QoS flags and returns
/// `(child, address)` once the router announces itself.
fn spawn_fleet(
    cfg: &BenchConfig,
    load: &LoadConfig,
) -> Result<(std::process::Child, String), String> {
    let router = sibling_binary("chatpattern-router").ok_or("chatpattern-router not built")?;
    let serve = sibling_binary("chatpattern-serve").ok_or("chatpattern-serve not built")?;
    let mut command = Command::new(router);
    command.args([
        "--listen",
        "127.0.0.1:0",
        "--workers",
        &load.fleet_workers.to_string(),
        "--tenant-quota",
        &load.quota,
        "--lane-weights",
        &load.lane_weights,
        "--serve-bin",
    ]);
    command.arg(serve);
    for arg in [
        "--window",
        &cfg.window.to_string(),
        "--training-patterns",
        &cfg.train.to_string(),
        "--diffusion-steps",
        &cfg.steps.to_string(),
        "--workers",
        "2",
        "--seed",
        &cfg.seed.to_string(),
    ] {
        command.args(["--serve-arg", arg]);
    }
    let mut child = command
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("router spawn failed: {e}"))?;
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("chatpattern-router: listening on ") {
                    break addr.trim().to_owned();
                }
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("router exited before announcing its address".to_owned());
            }
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    Ok((child, addr))
}

/// What one tenant's replay thread measured.
struct TenantOutcome {
    tenant: String,
    ops: usize,
    overloaded: u64,
    queue_full: u64,
    retries: u64,
    latencies_micros: Vec<u64>,
    elapsed: Duration,
}

struct TenantClient {
    client: NdjsonClient,
    tenant: String,
    next_id: u64,
    overloaded: u64,
    queue_full: u64,
    retries: u64,
    latencies_micros: Vec<u64>,
}

impl TenantClient {
    fn envelope(&mut self, request: PatternRequest) -> RequestEnvelope {
        let id = self.next_id;
        self.next_id += 1;
        RequestEnvelope {
            id: serde_json::to_value(&id),
            tenant: Some(self.tenant.clone()),
            request,
        }
    }

    /// Counts a typed back-pressure rejection and returns the retry
    /// hint, or `None` when the error is not a back-pressure kind.
    fn note_rejection(&mut self, kind: &str, retry_after_ms: Option<u64>) -> Option<u64> {
        match kind {
            "Overloaded" => self.overloaded += 1,
            "QueueFull" => self.queue_full += 1,
            _ => return None,
        }
        Some(retry_after_ms.unwrap_or(DEFAULT_RETRY_AFTER_MS))
    }

    /// One closed-loop request, retried through back-pressure until it
    /// completes; records the latency of the successful attempt.
    fn call_retrying(&mut self, request: PatternRequest) -> Result<ResponsePayload, String> {
        for _ in 0..MAX_RETRIES_PER_OP {
            let envelope = self.envelope(request.clone());
            let started = Instant::now();
            self.client
                .send(&envelope)
                .map_err(|e| format!("tenant {}: send failed: {e}", self.tenant))?;
            let reply: ResponseEnvelope = self
                .client
                .recv()
                .map_err(|e| format!("tenant {}: recv failed: {e}", self.tenant))?;
            match reply.outcome {
                WireOutcome::Ok(response) => {
                    self.latencies_micros
                        .push(started.elapsed().as_micros() as u64);
                    return Ok(response.payload);
                }
                WireOutcome::Err(error) => {
                    let Some(hint) = self.note_rejection(&error.kind, error.retry_after_ms) else {
                        return Err(format!(
                            "tenant {}: unexpected wire error {} ({})",
                            self.tenant, error.kind, error.message
                        ));
                    };
                    self.retries += 1;
                    std::thread::sleep(Duration::from_millis(hint));
                }
            }
        }
        Err(format!(
            "tenant {}: request still rejected after {MAX_RETRIES_PER_OP} retries",
            self.tenant
        ))
    }

    /// Replays one pipelined burst: all requests in flight at once,
    /// rejected ones re-sent (after the longest hint in the batch)
    /// until every operation has completed.
    fn burst(&mut self, requests: Vec<PatternRequest>) -> Result<Vec<ResponsePayload>, String> {
        let mut payloads = Vec::with_capacity(requests.len());
        let mut outstanding: HashMap<u64, (PatternRequest, Instant)> = HashMap::new();
        let mut rounds = 0usize;
        let mut pending = requests;
        while !pending.is_empty() {
            rounds += 1;
            if rounds > MAX_RETRIES_PER_OP {
                return Err(format!(
                    "tenant {}: burst still rejected after {MAX_RETRIES_PER_OP} rounds",
                    self.tenant
                ));
            }
            for request in pending.drain(..) {
                let envelope = self.envelope(request.clone());
                let id = envelope.id.as_u64().expect("numeric id");
                self.client
                    .send(&envelope)
                    .map_err(|e| format!("tenant {}: send failed: {e}", self.tenant))?;
                outstanding.insert(id, (request, Instant::now()));
            }
            let mut hint = 0u64;
            while !outstanding.is_empty() {
                let reply: ResponseEnvelope = self
                    .client
                    .recv()
                    .map_err(|e| format!("tenant {}: recv failed: {e}", self.tenant))?;
                let id = reply
                    .id
                    .as_u64()
                    .ok_or_else(|| format!("tenant {}: non-numeric reply id", self.tenant))?;
                let (request, sent) = outstanding
                    .remove(&id)
                    .ok_or_else(|| format!("tenant {}: unknown reply id {id}", self.tenant))?;
                match reply.outcome {
                    WireOutcome::Ok(response) => {
                        self.latencies_micros
                            .push(sent.elapsed().as_micros() as u64);
                        payloads.push(response.payload);
                    }
                    WireOutcome::Err(error) => {
                        let Some(h) = self.note_rejection(&error.kind, error.retry_after_ms) else {
                            return Err(format!(
                                "tenant {}: unexpected wire error {} ({})",
                                self.tenant, error.kind, error.message
                            ));
                        };
                        hint = hint.max(h);
                        self.retries += 1;
                        pending.push(request);
                    }
                }
            }
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_millis(hint));
            }
        }
        Ok(payloads)
    }
}

/// One tenant's full replay: session dialog, seeded mixed bursts, and
/// a closing batch evaluation.
fn run_tenant(
    addr: &str,
    index: usize,
    cfg: &BenchConfig,
    load: &LoadConfig,
    ops: usize,
) -> Result<TenantOutcome, String> {
    let tenant = format!("t{index}");
    let started = Instant::now();
    let client = NdjsonClient::connect(addr, ClientConfig::default())
        .map_err(|e| format!("tenant {tenant}: dial failed: {e}"))?;
    let mut tc = TenantClient {
        client,
        tenant: tenant.clone(),
        next_id: 0,
        overloaded: 0,
        queue_full: 0,
        retries: 0,
        latencies_micros: Vec::new(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (0x10ad << 16) ^ index as u64);
    let mut expected = 0usize;

    // Interactive lane: a short multi-turn chat session.
    let session = format!("load-{tenant}");
    let utterance = format!(
        "Generate 1 pattern, topology size {w}*{w}, physical size {f}nm x {f}nm, \
         style Layer-10001.",
        w = cfg.window,
        f = cfg.frame_nm(cfg.window),
    );
    tc.call_retrying(PatternRequest::SessionOpen(SessionOpenParams {
        session: session.clone(),
        seed: Some(index as u64),
    }))?;
    expected += 1;
    for _ in 0..load.turns {
        tc.call_retrying(PatternRequest::SessionTurn(SessionTurnParams {
            session: session.clone(),
            utterance: utterance.clone(),
        }))?;
        expected += 1;
    }
    tc.call_retrying(PatternRequest::SessionClose(SessionCloseParams {
        session: session.clone(),
    }))?;
    expected += 1;

    // Seed topology for the extend / legalize / evaluate operations.
    let seed_base = (index as u64) << 20;
    let payload = tc.call_retrying(PatternRequest::Generate(GenerateParams {
        style: Style::Layer10001,
        rows: cfg.window,
        cols: cfg.window,
        count: 1,
        seed: seed_base,
    }))?;
    expected += 1;
    let ResponsePayload::Generate(mut topologies) = payload else {
        return Err(format!(
            "tenant {tenant}: generate returned a non-generate payload"
        ));
    };
    let seed_topology: Topology = topologies
        .pop()
        .ok_or_else(|| format!("tenant {tenant}: generate returned no topology"))?;

    // Standard lane: pipelined mixed bursts. Distinct seeds per
    // operation keep the requests out of the cache and the in-flight
    // coalescer — the load must be real executions.
    let mut remaining = ops;
    let mut op_seed = seed_base;
    while remaining > 0 {
        let n = remaining.min(load.burst);
        remaining -= n;
        let requests: Vec<PatternRequest> = (0..n)
            .map(|_| {
                op_seed += 1;
                match rng.gen_range(0..10u32) {
                    0..=5 => PatternRequest::Generate(GenerateParams {
                        style: Style::Layer10001,
                        rows: cfg.window,
                        cols: cfg.window,
                        count: 1,
                        seed: op_seed,
                    }),
                    6..=7 => PatternRequest::Extend(ExtendParams {
                        seed_topology: seed_topology.clone(),
                        rows: cfg.window * 3 / 2,
                        cols: cfg.window * 3 / 2,
                        method: ExtensionMethod::OutPainting,
                        style: Style::Layer10001,
                        seed: op_seed,
                    }),
                    _ => PatternRequest::Legalize(LegalizeParams {
                        topology: seed_topology.clone(),
                        width_nm: cfg.frame_nm(cfg.window),
                        height_nm: cfg.frame_nm(cfg.window),
                        seed: op_seed,
                    }),
                }
            })
            .collect();
        expected += n;
        tc.burst(requests)?;
    }

    // Batch lane: one library evaluation over the seed topology.
    tc.call_retrying(PatternRequest::Evaluate(EvaluateParams {
        topologies: vec![seed_topology],
        frame_nm: cfg.frame_nm(cfg.window),
        seed: seed_base,
    }))?;
    expected += 1;

    if tc.latencies_micros.len() != expected {
        return Err(format!(
            "tenant {tenant}: completed {} of {expected} operations",
            tc.latencies_micros.len()
        ));
    }
    Ok(TenantOutcome {
        tenant,
        ops: expected,
        overloaded: tc.overloaded,
        queue_full: tc.queue_full,
        retries: tc.retries,
        latencies_micros: tc.latencies_micros,
        elapsed: started.elapsed(),
    })
}

fn percentile(sorted_micros: &[u64], q: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = (((sorted_micros.len() - 1) as f64) * q).round() as usize;
    sorted_micros[idx]
}

/// Fetches the fleet-merged engine stats through the router.
fn fleet_stats(addr: &str) -> Result<EngineStats, String> {
    let mut client = NdjsonClient::connect(addr, ClientConfig::default())
        .map_err(|e| format!("stats dial failed: {e}"))?;
    let reply = client
        .call(&RequestEnvelope {
            id: serde_json::to_value(&0u64),
            tenant: None,
            request: PatternRequest::Stats,
        })
        .map_err(|e| format!("stats call failed: {e}"))?;
    match reply.outcome {
        WireOutcome::Ok(response) => match response.payload {
            ResponsePayload::Stats(stats) => Ok(stats),
            other => Err(format!("stats returned a non-stats payload {other:?}")),
        },
        WireOutcome::Err(error) => Err(format!("stats errored: {}", error.message)),
    }
}

/// Merges the `load_replay` section into `BENCH_ENGINE.json`,
/// preserving whatever other benches recorded there.
fn write_results(section_json: &str) {
    let section: serde_json::Value =
        serde_json::from_str(section_json).expect("load_replay section is valid JSON");
    let mut root = std::fs::read_to_string("BENCH_ENGINE.json")
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .unwrap_or_else(|| serde_json::Value::Object(serde_json::Map::new()));
    match &mut root {
        serde_json::Value::Object(map) => {
            map.insert("load_replay".to_owned(), section);
        }
        _ => {
            let mut map = serde_json::Map::new();
            map.insert("load_replay".to_owned(), section);
            root = serde_json::Value::Object(map);
        }
    }
    let mut text = serde_json::to_string(&root).expect("results serialize");
    text.push('\n');
    std::fs::write("BENCH_ENGINE.json", text).expect("write BENCH_ENGINE.json");
}

fn main() {
    let cfg = BenchConfig::from_env();
    let load = LoadConfig::from_env();
    cfg.print_banner("QoS replay load generator: multi-tenant mixed workload over a router fleet");
    println!(
        "fleet: {} worker(s), quota {:?} per tenant, lane weights {}",
        load.fleet_workers, load.quota, load.lane_weights
    );
    println!(
        "load: {} tenant(s), {} burst ops (Zipf s={}), burst {}, {} session turn(s) each",
        load.tenants, load.total_ops, load.zipf, load.burst, load.turns
    );

    let (mut child, addr) = match spawn_fleet(&cfg, &load) {
        Ok(spawned) => spawned,
        Err(reason) => {
            eprintln!("load_replay: cannot run: {reason}");
            std::process::exit(1);
        }
    };
    let allocation = load.allocate_ops();
    let wall = Instant::now();
    let outcomes: Vec<Result<TenantOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = allocation
            .iter()
            .enumerate()
            .map(|(index, &ops)| {
                let addr = addr.as_str();
                let cfg = &cfg;
                let load = &load;
                scope.spawn(move || run_tenant(addr, index, cfg, load, ops))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });
    let wall_millis = wall.elapsed().as_secs_f64() * 1e3;

    let mut failed = false;
    let mut tenants = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(tenant) => tenants.push(tenant),
            Err(reason) => {
                eprintln!("load_replay FAILED: {reason}");
                failed = true;
            }
        }
    }
    let stats = if failed {
        let _ = child.kill();
        let _ = child.wait();
        std::process::exit(1);
    } else {
        let stats = fleet_stats(&addr);
        // Graceful teardown takes the spawned workers down too.
        if let Ok(mut client) = NdjsonClient::connect(&addr, ClientConfig::default()) {
            let _ = client.send_line(r#"{"id":"load-bye","control":"Shutdown"}"#);
            let _ = client.recv_line();
        }
        let _ = child.wait();
        stats.unwrap_or_else(|reason| {
            eprintln!("load_replay FAILED: {reason}");
            std::process::exit(1);
        })
    };

    // Per-tenant report + JSON rows.
    println!("\nper-tenant latency (closed-loop over the fleet):");
    let mut rows = String::new();
    let mut rates = Vec::new();
    let mut total_overloaded = 0u64;
    let mut total_queue_full = 0u64;
    let mut total_retries = 0u64;
    let mut total_ops = 0usize;
    for outcome in &mut tenants {
        outcome.latencies_micros.sort_unstable();
        let p50 = percentile(&outcome.latencies_micros, 0.50);
        let p95 = percentile(&outcome.latencies_micros, 0.95);
        let p99 = percentile(&outcome.latencies_micros, 0.99);
        #[allow(clippy::cast_precision_loss)]
        let mean_micros = outcome.latencies_micros.iter().sum::<u64>() as f64
            / outcome.latencies_micros.len() as f64;
        // Service rate seen by this tenant's requests: the fairness
        // claim is that per-request service is tenant-independent.
        rates.push(1e6 / mean_micros.max(1.0));
        total_overloaded += outcome.overloaded;
        total_queue_full += outcome.queue_full;
        total_retries += outcome.retries;
        total_ops += outcome.ops;
        println!(
            "  {:<4} {:3} ops  p50 {:7} us  p95 {:7} us  p99 {:7} us  \
             {} overloaded, {} queue-full, {} retries, {:.1} ms wall",
            outcome.tenant,
            outcome.ops,
            p50,
            p95,
            p99,
            outcome.overloaded,
            outcome.queue_full,
            outcome.retries,
            outcome.elapsed.as_secs_f64() * 1e3,
        );
        let _ = write!(
            rows,
            "{}{{\"tenant\":\"{}\",\"ops\":{},\"overloaded\":{},\"queue_full\":{},\
             \"retries\":{},\"p50_micros\":{p50},\"p95_micros\":{p95},\"p99_micros\":{p99},\
             \"mean_micros\":{mean_micros:.1}}}",
            if rows.is_empty() { "" } else { "," },
            outcome.tenant,
            outcome.ops,
            outcome.overloaded,
            outcome.queue_full,
            outcome.retries,
        );
    }
    let fairness = jain_index(&rates);
    #[allow(clippy::cast_precision_loss)]
    let rps = total_ops as f64 / (wall_millis / 1e3);
    println!(
        "\ntotal: {total_ops} ops in {wall_millis:.1} ms ({rps:.1} ops/s), \
         {total_overloaded} overloaded + {total_queue_full} queue-full rejections, \
         {total_retries} retries"
    );
    println!("fairness (Jain index over per-tenant mean service rates): {fairness:.3}");

    // The fleet-merged per-tenant rows are the server-side half of the
    // proof: every tenant must have been accounted, and the ledger's
    // rejection counts must match what the clients saw on the wire.
    let mut fleet_rows = String::new();
    let mut fleet_rejected = 0u64;
    println!("\nfleet-merged tenant rows (router Stats):");
    for row in &stats.tenants {
        println!(
            "  tenant={} lane={} admitted={} rejected={} completed={} queue_micros={}",
            row.tenant, row.lane, row.admitted, row.rejected, row.completed, row.queue_micros
        );
        if row.tenant != DEFAULT_TENANT {
            fleet_rejected += row.rejected;
        }
        let _ = write!(
            fleet_rows,
            "{}{{\"tenant\":\"{}\",\"lane\":\"{}\",\"admitted\":{},\"rejected\":{},\
             \"completed\":{},\"queue_micros\":{}}}",
            if fleet_rows.is_empty() { "" } else { "," },
            row.tenant,
            row.lane,
            row.admitted,
            row.rejected,
            row.completed,
            row.queue_micros,
        );
    }
    for outcome in &tenants {
        let admitted: u64 = stats
            .tenants
            .iter()
            .filter(|r| r.tenant == outcome.tenant)
            .map(|r| r.admitted)
            .sum();
        assert!(
            admitted >= outcome.ops as u64,
            "fleet rows must account tenant {} ({admitted} admitted < {} ops)",
            outcome.tenant,
            outcome.ops
        );
    }
    assert_eq!(
        fleet_rejected, total_overloaded,
        "the fleet ledger's rejection count must match the typed Overloaded replies"
    );

    let section = format!(
        "{{\"tenants\":{},\"fleet_workers\":{},\"zipf\":{},\"quota\":\"{}\",\
         \"lane_weights\":\"{}\",\"burst\":{},\"session_turns\":{},\"total_ops\":{total_ops},\
         \"wall_millis\":{wall_millis:.3},\"ops_per_sec\":{rps:.3},\
         \"overloaded\":{total_overloaded},\"queue_full\":{total_queue_full},\
         \"retries\":{total_retries},\"fairness_jain\":{fairness:.4},\
         \"per_tenant\":[{rows}],\"fleet_tenant_rows\":[{fleet_rows}]}}",
        load.tenants,
        load.fleet_workers,
        load.zipf,
        load.quota,
        load.lane_weights,
        load.burst,
        load.turns,
    );
    write_results(&section);
    println!("\nmerged load_replay results into BENCH_ENGINE.json");
}
