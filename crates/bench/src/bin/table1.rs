//! Regenerates Table 1 of the paper: legality and diversity for the
//! fixed-size (window-size) and free-size (2×/4×/8×) settings.
//!
//! Run with `cargo run -p cp-bench --release --bin table1 [-- --block fixed|free|all]`.
//! Scale via `CP_WINDOW`, `CP_SAMPLES`, etc. (see `cp_bench` docs).

use chatpattern_core::GenerateParams;
use cp_baselines::{concat_extend, Cae, DiffPattern, Generator, LayouTransformer, LegalGan, Vcae};
use cp_bench::{
    evaluate_assembled, print_table_header, training_topologies, BenchConfig, TableRow,
};
use cp_dataset::{DatasetBuilder, Style};
use cp_diffusion::PatternSampler;
use cp_extend::{extend, ExtensionMethod};
use cp_legalize::Legalizer;
use cp_squish::Topology;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = BenchConfig::from_env();
    let block = std::env::args()
        .skip_while(|a| a != "--block")
        .nth(1)
        .unwrap_or_else(|| "all".to_owned());
    cfg.print_banner("Table 1: Comparison on Legality and Diversity");

    let system = cfg.build_system();
    let rules = *system.rules();
    let frame = cfg.frame_nm(cfg.window);
    let train_a = training_topologies(&system, Style::Layer10001);
    let train_b = training_topologies(&system, Style::Layer10003);

    if block == "fixed" || block == "all" {
        println!("--- Fixed-size ({0}x{0}) ---", cfg.window);
        print_table_header();

        // Real-pattern references (raw dataset topologies).
        TableRow::reference(&train_a, &train_b).print("Real Patterns");

        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 100);

        // CAE + LegalGAN (trained on Layer-10001 only, like the paper).
        let legal_gan = LegalGan::fit(&train_a);
        let cae = Cae::fit(&train_a, 12.min(cfg.train / 2));
        let cae_lib: Vec<Topology> = (0..cfg.samples)
            .map(|_| legal_gan.legalize_topology(&cae.generate(cfg.window, cfg.window, &mut rng)))
            .collect();
        TableRow::single_style(&cae_lib, frame, &rules, cfg.seed + 1).print("CAE+LegalGAN");

        // VCAE + LegalGAN.
        let vcae = Vcae::fit(&train_a, 12.min(cfg.train / 2));
        let vcae_lib: Vec<Topology> = (0..cfg.samples)
            .map(|_| legal_gan.legalize_topology(&vcae.generate(cfg.window, cfg.window, &mut rng)))
            .collect();
        TableRow::single_style(&vcae_lib, frame, &rules, cfg.seed + 2).print("VCAE+LegalGAN");

        // LayouTransformer.
        let lt = LayouTransformer::fit(&train_a, 1.0);
        let lt_lib: Vec<Topology> = (0..cfg.samples)
            .map(|_| lt.generate(cfg.window, cfg.window, &mut rng))
            .collect();
        TableRow::single_style(&lt_lib, frame, &rules, cfg.seed + 3).print("LayouTransformer");

        // DiffPattern: one unconditional model per style.
        let dp_a = DiffPattern::fit(&train_a, cfg.steps, cfg.window);
        let dp_b = DiffPattern::fit(&train_b, cfg.steps, cfg.window);
        let dp_lib_a: Vec<Topology> = (0..cfg.samples)
            .map(|_| dp_a.generate(cfg.window, cfg.window, &mut rng))
            .collect();
        let dp_lib_b: Vec<Topology> = (0..cfg.samples)
            .map(|_| dp_b.generate(cfg.window, cfg.window, &mut rng))
            .collect();
        TableRow::from_libraries(&dp_lib_a, &dp_lib_b, frame, &rules, cfg.seed + 4)
            .print("DiffPattern");

        // ChatPattern: one conditional model over the union dataset,
        // driven through the batch fan-out path of the service API.
        let requests: Vec<GenerateParams> = [
            (Style::Layer10001, cfg.seed + 5),
            (Style::Layer10003, cfg.seed + 6),
        ]
        .into_iter()
        .map(|(style, seed)| GenerateParams {
            style,
            rows: cfg.window,
            cols: cfg.window,
            count: cfg.samples,
            seed,
        })
        .collect();
        let mut libraries = system
            .generate_many(&requests)
            .expect("bench generation parameters are valid");
        let cp_lib_b = libraries.pop().expect("two libraries");
        let cp_lib_a = libraries.pop().expect("two libraries");
        TableRow::from_libraries(&cp_lib_a, &cp_lib_b, frame, &rules, cfg.seed + 7)
            .print("ChatPattern");
        println!();
    }

    if block == "free" || block == "all" {
        for scale in [2usize, 4, 8] {
            let size = cfg.window * scale;
            let frame = cfg.frame_nm(size);
            // Fewer samples at the biggest sizes: extension cost is
            // quadratic in scale (documented in EXPERIMENTS.md).
            let samples = (cfg.samples / scale).max(8);
            println!("--- Free-size ({size}x{size}, {samples} samples/style) ---");
            print_table_header();

            // Real references: dataset windows scaled up like the paper's
            // 4x/16x/64x larger map splits.
            let ref_count = samples.min(32);
            // References use the dataset's native 16 nm/cell windows (the
            // paper's map-split ratio); they are never legalized, so the
            // evaluation frame does not apply to them.
            let reference = |style: Style, seed: u64| -> Vec<Topology> {
                DatasetBuilder::new(style)
                    .patch_nm((size as i64) * 16)
                    .topology_size(size)
                    .count(ref_count)
                    .seed(seed)
                    .build()
                    .topologies()
                    .cloned()
                    .collect()
            };
            let ref_a = reference(Style::Layer10001, cfg.seed + 20);
            let ref_b = reference(Style::Layer10003, cfg.seed + 21);
            TableRow::reference(&ref_a, &ref_b).print("Real Patterns");

            // DiffPattern w/ Concatenation: stitch already-legalized
            // tiles; seam geometry is frozen, so legality is the DRC-clean
            // fraction of the assemblies.
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 30 + scale as u64);
            let legalizer = Legalizer::new(rules);
            let dp_a = DiffPattern::fit(&train_a, cfg.steps, cfg.window);
            let dp_b = DiffPattern::fit(&train_b, cfg.steps, cfg.window);
            let tile_frame = cfg.frame_nm(cfg.window);
            let mut concat_row = |gen: &DiffPattern, seed_extra: u64| -> Vec<cp_geom::Layout> {
                let _ = seed_extra;
                (0..samples)
                    .filter_map(|_| {
                        concat_extend(
                            gen, cfg.window, scale, scale, tile_frame, &legalizer, 4, &mut rng,
                        )
                    })
                    .collect()
            };
            let cat_a = concat_row(&dp_a, 0);
            let cat_b = concat_row(&dp_b, 1);
            let (leg_a, div_a) = evaluate_assembled(&cat_a, &rules);
            let (leg_b, div_b) = evaluate_assembled(&cat_b, &rules);
            let pooled: Vec<cp_geom::Layout> = cat_a.iter().chain(cat_b.iter()).cloned().collect();
            let (leg_t, div_t) = evaluate_assembled(&pooled, &rules);
            TableRow {
                legality_a: leg_a,
                diversity_a: div_a,
                legality_b: leg_b,
                diversity_b: div_b,
                legality_total: leg_t,
                diversity_total: div_t,
            }
            .print("DiffPattern w/ Concat");

            // ChatPattern: seed sample extended by out-painting (the
            // agent's documented default choice).
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 50 + scale as u64);
            let mut cp_a = Vec::with_capacity(samples);
            let mut cp_b = Vec::with_capacity(samples);
            for (style, out) in [
                (Style::Layer10001, &mut cp_a),
                (Style::Layer10003, &mut cp_b),
            ] {
                for _ in 0..samples {
                    let seed_topo =
                        system
                            .model()
                            .generate(cfg.window, cfg.window, Some(style.id()), &mut rng);
                    out.push(extend(
                        system.model(),
                        &seed_topo,
                        size,
                        size,
                        ExtensionMethod::OutPainting,
                        Some(style.id()),
                        &mut rng,
                    ));
                }
            }
            TableRow::from_libraries(&cp_a, &cp_b, frame, &rules, cfg.seed + 60)
                .print("ChatPattern");
            println!();
        }
    }
    println!("done.");
}
