//! §4.2 "Unseen Mistake-processing": legalization fails repeatedly in the
//! same region; the agent in-paints that specific area with the same
//! style and attempts legalization again instead of dropping the pattern.
//!
//! Reproduced by forbidding drops and scanning the frame downward until
//! legalization genuinely fails, which forces the recovery path.

use cp_bench::BenchConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.print_banner("§4.2: unseen mistake-processing");
    let system = cfg.build_system();
    let mut chosen = None;
    for per_cell in [12i64, 11, 10, 9, 8, 7] {
        let request = format!(
            "Generate 3 patterns, topology size {0}*{0}, physical size {1}nm x {1}nm, \
             style Layer-10001. Do not drop failed patterns.",
            cfg.window,
            (cfg.window as i64) * per_cell,
        );
        let report = system
            .chat_with_seed(&request, cfg.seed + per_cell as u64)
            .expect("the recovery request parses into requirements");
        let transcript = report.render_transcript();
        let modifications = transcript.matches("Action: topology_modification").count();
        if modifications > 0 {
            println!("[User request] ({per_cell} nm/cell)\n{request}\n");
            chosen = Some((report, transcript));
            break;
        }
    }
    let Some((report, transcript)) = chosen else {
        println!("no legalization failures observed down to 7 nm/cell; nothing to recover");
        return;
    };
    // Print only the interesting part: modification steps and their
    // surroundings.
    for block in transcript.split("\n\n") {
        if block.contains("topology_modification")
            || block.contains("legalize")
            || block.contains("Final Answer")
        {
            println!("{block}\n");
        }
    }
    println!(
        "=> delivered {}/3 patterns; modification calls: {}",
        report.library.len(),
        transcript.matches("Action: topology_modification").count()
    );
}
