//! Figure 10: evaluation of In-Painting vs Out-Painting per style —
//! the statistics the agent's experience documents are built from.

use cp_bench::{evaluate_library, BenchConfig};
use cp_dataset::Style;
use cp_diffusion::PatternSampler;
use cp_extend::{extend, ExtensionMethod};
use cp_squish::Topology;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = BenchConfig::from_env();
    cfg.print_banner("Figure 10: In-Painting vs Out-Painting");
    let system = cfg.build_system();
    let rules = *system.rules();
    let size = cfg.window * 2;
    let frame = cfg.frame_nm(size);
    let samples = (cfg.samples / 2).max(8);
    println!(
        "{:<14} {:<14} {:>9} {:>10}",
        "Style", "Method", "Legality", "Diversity"
    );
    println!("{}", "-".repeat(50));
    for style in [Style::Layer10001, Style::Layer10003] {
        for method in [ExtensionMethod::InPainting, ExtensionMethod::OutPainting] {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 10 + style.id() as u64);
            let lib: Vec<Topology> = (0..samples)
                .map(|_| {
                    let seed_topo =
                        system
                            .model()
                            .generate(cfg.window, cfg.window, Some(style.id()), &mut rng);
                    extend(
                        system.model(),
                        &seed_topo,
                        size,
                        size,
                        method,
                        Some(style.id()),
                        &mut rng,
                    )
                })
                .collect();
            let stats = evaluate_library(&lib, frame, &rules, cfg.seed + 11);
            println!(
                "{:<14} {:<14} {:>8.2}% {:>10.3}",
                style.name(),
                method.to_string(),
                stats.legality * 100.0,
                stats.diversity
            );
        }
    }
    println!("\nThese rows feed the agent's KnowledgeBase (get_documentation).");
}
