//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary scales with one [`BenchConfig`], read from the
//! environment so paper-scale runs are a matter of exporting variables:
//!
//! | variable | default | paper value | meaning |
//! |---|---|---|---|
//! | `CP_WINDOW` | 64 | 128 | model window `L` (fixed-size topology) |
//! | `CP_SAMPLES` | 40 | 10000 | samples per method per style |
//! | `CP_STEPS` | 10 | 1000 | diffusion chain length `K` |
//! | `CP_TRAIN` | 48 | ~10k patches | training patterns per style |
//! | `CP_SEED` | 0 | — | master seed |
//!
//! The physical frame is `32 nm × topology size` (see [`BenchConfig::frame_nm`]
//! for the calibration note), and free-size experiments run at 2×/4×/8×
//! the window (the paper's 256²/512²/1024²).

use chatpattern_core::ChatPattern;
use cp_dataset::Style;
use cp_drc::{check_pattern, DesignRules};
use cp_geom::Layout;
use cp_metrics::{diversity, legality, LibraryStats};
use cp_squish::{SquishPattern, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Scale knobs for every experiment binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Model window `L` (the paper's 128).
    pub window: usize,
    /// Samples per method per style (the paper's 10,000).
    pub samples: usize,
    /// Diffusion steps `K` (the paper's 1000).
    pub steps: usize,
    /// Training patterns per style.
    pub train: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            window: 64,
            samples: 40,
            steps: 10,
            train: 48,
            seed: 0,
        }
    }
}

impl BenchConfig {
    /// Reads the configuration from `CP_*` environment variables.
    #[must_use]
    pub fn from_env() -> BenchConfig {
        let get = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let d = BenchConfig::default();
        BenchConfig {
            window: get("CP_WINDOW", d.window),
            samples: get("CP_SAMPLES", d.samples),
            steps: get("CP_STEPS", d.steps),
            train: get("CP_TRAIN", d.train),
            seed: get("CP_SEED", d.seed as usize) as u64,
        }
    }

    /// Physical frame (nm) for a topology of `size` cells: 16 nm/cell,
    /// the paper's 2048 nm / 128-cell ratio. The `calibrate` binary
    /// reports each method's minimal-extent distribution under the
    /// reference rules for re-tuning at other scales.
    #[must_use]
    pub fn frame_nm(&self, size: usize) -> i64 {
        (size as i64) * 16
    }

    /// Builds the ChatPattern system at this scale.
    ///
    /// # Panics
    ///
    /// Panics when the `CP_*` environment variables describe an invalid
    /// configuration — the experiment binaries want the loud failure.
    #[must_use]
    pub fn build_system(&self) -> ChatPattern {
        ChatPattern::builder()
            .window(self.window)
            .diffusion_steps(self.steps)
            .training_patterns(self.train)
            .seed(self.seed)
            .build()
            .unwrap_or_else(|e| panic!("invalid CP_* bench configuration: {e}"))
    }

    /// Prints the configuration banner every binary starts with.
    pub fn print_banner(&self, experiment: &str) {
        println!("=== {experiment} ===");
        println!(
            "config: window={} (paper 128), samples={} (paper 10000), steps={} \
             (paper 1000), train={} per style, seed={}",
            self.window, self.samples, self.steps, self.train, self.seed
        );
        println!(
            "frames: fixed {} nm; free sizes {}/{}/{} cells (16 nm/cell)\n",
            self.frame_nm(self.window),
            self.window * 2,
            self.window * 4,
            self.window * 8,
        );
    }
}

/// Evaluates a topology library exactly as Table 1 does: one
/// legalization attempt each (no selection), then diversity over the
/// legal survivors.
#[must_use]
pub fn evaluate_library(
    topologies: &[Topology],
    frame_nm: i64,
    rules: &DesignRules,
    seed: u64,
) -> LibraryStats {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let report = legality(topologies.iter(), frame_nm, rules, &mut rng);
    LibraryStats::from_report(&report)
}

/// Evaluates *assembled* layouts with frozen geometry (the concatenation
/// baseline): legality is the DRC-clean fraction — no legalization can
/// repair a stitched pattern — and diversity is measured over the clean
/// survivors' minimal topologies.
#[must_use]
pub fn evaluate_assembled(layouts: &[Layout], rules: &DesignRules) -> (f64, f64) {
    if layouts.is_empty() {
        return (0.0, 0.0);
    }
    let mut clean_topologies = Vec::new();
    for layout in layouts {
        let squish = SquishPattern::from_layout(layout).minimized();
        if check_pattern(&squish, rules).is_clean() {
            clean_topologies.push(squish.topology().clone());
        }
    }
    let legality = clean_topologies.len() as f64 / layouts.len() as f64;
    (legality, diversity(clean_topologies.iter()))
}

/// Reference (real-pattern) diversity of raw topologies.
#[must_use]
pub fn reference_diversity(topologies: &[Topology]) -> f64 {
    diversity(topologies.iter())
}

/// One Table-1-style row over both styles plus the pooled total.
#[derive(Debug, Clone, Copy)]
pub struct TableRow {
    /// Layer-10001 legality (NaN = not applicable).
    pub legality_a: f64,
    /// Layer-10001 diversity.
    pub diversity_a: f64,
    /// Layer-10003 legality.
    pub legality_b: f64,
    /// Layer-10003 diversity.
    pub diversity_b: f64,
    /// Pooled legality.
    pub legality_total: f64,
    /// Pooled diversity.
    pub diversity_total: f64,
}

impl TableRow {
    /// Builds the row from per-style libraries.
    #[must_use]
    pub fn from_libraries(
        lib_a: &[Topology],
        lib_b: &[Topology],
        frame_nm: i64,
        rules: &DesignRules,
        seed: u64,
    ) -> TableRow {
        let a = evaluate_library(lib_a, frame_nm, rules, seed);
        let b = evaluate_library(lib_b, frame_nm, rules, seed + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 2);
        let pooled_report = legality(lib_a.iter().chain(lib_b.iter()), frame_nm, rules, &mut rng);
        let pooled = LibraryStats::from_report(&pooled_report);
        TableRow {
            legality_a: a.legality,
            diversity_a: a.diversity,
            legality_b: b.legality,
            diversity_b: b.diversity,
            legality_total: pooled.legality,
            diversity_total: pooled.diversity,
        }
    }

    /// Single-style row (the baselines trained on Layer-10001 only).
    #[must_use]
    pub fn single_style(
        lib_a: &[Topology],
        frame_nm: i64,
        rules: &DesignRules,
        seed: u64,
    ) -> TableRow {
        let a = evaluate_library(lib_a, frame_nm, rules, seed);
        TableRow {
            legality_a: a.legality,
            diversity_a: a.diversity,
            legality_b: f64::NAN,
            diversity_b: f64::NAN,
            legality_total: f64::NAN,
            diversity_total: f64::NAN,
        }
    }

    /// Reference row (no legality column).
    #[must_use]
    pub fn reference(lib_a: &[Topology], lib_b: &[Topology]) -> TableRow {
        let pooled: Vec<Topology> = lib_a.iter().chain(lib_b.iter()).cloned().collect();
        TableRow {
            legality_a: f64::NAN,
            diversity_a: reference_diversity(lib_a),
            legality_b: f64::NAN,
            diversity_b: reference_diversity(lib_b),
            legality_total: f64::NAN,
            diversity_total: reference_diversity(&pooled),
        }
    }

    /// Prints the row in the paper's column layout.
    pub fn print(&self, label: &str) {
        let pct = |v: f64| {
            if v.is_nan() {
                "      /".to_owned()
            } else {
                format!("{:6.2}%", v * 100.0)
            }
        };
        let div = |v: f64| {
            if v.is_nan() {
                "      /".to_owned()
            } else {
                format!("{v:7.3}")
            }
        };
        println!(
            "{label:<28} {} {}   {} {}   {} {}",
            pct(self.legality_a),
            div(self.diversity_a),
            pct(self.legality_b),
            div(self.diversity_b),
            pct(self.legality_total),
            div(self.diversity_total),
        );
    }
}

/// Prints the Table-1 column header.
pub fn print_table_header() {
    println!(
        "{:<28} {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}",
        "Method", "10001-L", "10001-H", "10003-L", "10003-H", "Tot-L", "Tot-H"
    );
    println!("{}", "-".repeat(82));
}

/// Both styles in evaluation order.
#[must_use]
pub fn styles() -> [Style; 2] {
    [Style::Layer10001, Style::Layer10003]
}

/// Training topologies of one style, cloned out of the system datasets.
#[must_use]
pub fn training_topologies(system: &ChatPattern, style: Style) -> Vec<Topology> {
    system
        .datasets()
        .iter()
        .find(|d| d.style() == style)
        .map(|d| d.topologies().cloned().collect())
        .unwrap_or_default()
}
