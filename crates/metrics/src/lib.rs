//! Evaluation metrics for pattern libraries.
//!
//! Implements the paper's two quality measures:
//!
//! * **Legality** (Eq. 7): the fraction of generated topologies that
//!   legalize into DRC-clean patterns — computed *without* topology
//!   selection, exactly as the paper's fair-comparison protocol demands;
//! * **Diversity** (Eq. 8): the Shannon entropy `H` (in bits) of the
//!   joint distribution of pattern complexities `(cx, cy)` over the
//!   *legal* members of a library.
//!
//! Plus [`LibraryStats`] summaries used by the agent's experience
//! documents (the Figure-10 statistics that drive extension-method
//! selection).
//!
//! # Example
//!
//! ```
//! use cp_metrics::diversity;
//! use cp_squish::Topology;
//! // Four distinct complexities, uniformly distributed → H = 2 bits.
//! let library = vec![
//!     Topology::from_ascii("1...\n....\n....\n...."),
//!     Topology::from_ascii("1.1.\n....\n....\n...."),
//!     Topology::from_ascii("1...\n....\n1...\n...."),
//!     Topology::from_ascii("1.1.\n....\n1.1.\n...."),
//! ];
//! let h = diversity(library.iter());
//! assert!((h - 2.0).abs() < 1e-9);
//! ```

pub mod diversity;
pub mod legality;
pub mod stats;

pub use diversity::{complexity_histogram, diversity, entropy_bits};
pub use legality::{legality, LegalityOutcome, LegalityReport};
pub use stats::LibraryStats;
