//! Legality: the fraction of topologies that legalize DRC-clean (Eq. 7).

use cp_drc::{check_pattern, DesignRules};
use cp_legalize::{LegalizeFailure, Legalizer};
use cp_squish::{SquishPattern, Topology};
use rand::Rng;

/// Outcome of legalizing a single topology.
#[derive(Debug, Clone)]
pub enum LegalityOutcome {
    /// Legalization succeeded and the result is DRC-clean.
    Legal(SquishPattern),
    /// Legalization failed (with the explainable failure).
    Failed(LegalizeFailure),
}

impl LegalityOutcome {
    /// True for the legal case.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        matches!(self, LegalityOutcome::Legal(_))
    }

    /// The legal pattern, if any.
    #[must_use]
    pub fn pattern(&self) -> Option<&SquishPattern> {
        match self {
            LegalityOutcome::Legal(p) => Some(p),
            LegalityOutcome::Failed(_) => None,
        }
    }
}

/// Per-library legality evaluation result.
#[derive(Debug, Clone)]
pub struct LegalityReport {
    outcomes: Vec<LegalityOutcome>,
}

impl LegalityReport {
    /// Per-topology outcomes, in input order.
    #[must_use]
    pub fn outcomes(&self) -> &[LegalityOutcome] {
        &self.outcomes
    }

    /// Number of topologies evaluated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of legal patterns.
    #[must_use]
    pub fn legal_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_legal()).count()
    }

    /// Legality ratio in `0.0..=1.0` (Eq. 7); `0.0` for an empty library.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.legal_count() as f64 / self.total() as f64
        }
    }

    /// The legal patterns (for downstream diversity evaluation).
    pub fn legal_patterns(&self) -> impl Iterator<Item = &SquishPattern> + '_ {
        self.outcomes.iter().filter_map(LegalityOutcome::pattern)
    }

    /// The legal topologies.
    pub fn legal_topologies(&self) -> impl Iterator<Item = &Topology> + '_ {
        self.legal_patterns().map(SquishPattern::topology)
    }
}

/// Legalizes every topology once (no selection, no retry — the paper's
/// fair-comparison protocol) and verifies the results with the DRC
/// engine.
///
/// `frame_nm` is the requested physical pattern size.
///
/// # Panics
///
/// Panics (debug builds only) if a pattern that legalized successfully
/// fails the independent DRC check — that would be a legalizer bug.
#[must_use]
pub fn legality<'a>(
    topologies: impl Iterator<Item = &'a Topology>,
    frame_nm: i64,
    rules: &DesignRules,
    rng: &mut impl Rng,
) -> LegalityReport {
    let legalizer = Legalizer::new(*rules);
    let outcomes = topologies
        .map(|t| match legalizer.legalize(t, frame_nm, frame_nm, rng) {
            Ok(pattern) => {
                debug_assert!(
                    check_pattern(&pattern, rules).is_clean(),
                    "legalizer produced a DRC-dirty pattern"
                );
                LegalityOutcome::Legal(pattern)
            }
            Err(failure) => LegalityOutcome::Failed(failure),
        })
        .collect();
    LegalityReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_simple_topologies_are_legal() {
        let rules = DesignRules::new(20, 20, 400);
        let lib = [
            Topology::from_ascii("11..\n11..\n....\n...."),
            Topology::from_ascii("....\n.11.\n.11.\n...."),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = legality(lib.iter(), 500, &rules, &mut rng);
        assert_eq!(report.legal_count(), 2);
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overcomplex_topology_fails() {
        let rules = DesignRules::new(20, 20, 400);
        // 1-px checkerboard row at tiny frame: infeasible.
        let lib = [Topology::from_ascii("1.1.1.1.1.1")];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = legality(lib.iter(), 100, &rules, &mut rng);
        assert_eq!(report.legal_count(), 0);
        assert_eq!(report.total(), 1);
        assert!(matches!(report.outcomes()[0], LegalityOutcome::Failed(_)));
    }

    #[test]
    fn mixed_library_ratio() {
        let rules = DesignRules::new(20, 20, 400);
        let lib = [
            Topology::from_ascii("11\n11"),
            Topology::from_ascii("1.1.1.1.1.1"),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = legality(lib.iter(), 100, &rules, &mut rng);
        assert!((report.ratio() - 0.5).abs() < 1e-12);
        assert_eq!(report.legal_patterns().count(), 1);
    }

    #[test]
    fn empty_library_ratio_is_zero() {
        let rules = DesignRules::new(20, 20, 400);
        let lib: Vec<Topology> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(legality(lib.iter(), 100, &rules, &mut rng).ratio(), 0.0);
    }
}
