//! Diversity: Shannon entropy over pattern complexities (paper Eq. 8).

use cp_squish::{complexity, Complexity, Topology};
use std::collections::HashMap;

/// Histogram of `(cx, cy)` complexities over a library.
#[must_use]
pub fn complexity_histogram<'a>(
    library: impl Iterator<Item = &'a Topology>,
) -> HashMap<Complexity, usize> {
    let mut hist = HashMap::new();
    for t in library {
        *hist.entry(complexity(t)).or_insert(0) += 1;
    }
    hist
}

/// Shannon entropy in bits of a count histogram.
///
/// Returns `0.0` for empty input.
#[must_use]
pub fn entropy_bits<K>(hist: &HashMap<K, usize>) -> f64 {
    let total: usize = hist.values().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    hist.values()
        .filter(|&&n| n > 0)
        .map(|&n| {
            let p = n as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Diversity `H` of a library: entropy of the joint `(cx, cy)`
/// complexity distribution (paper Eq. 8), in bits.
#[must_use]
pub fn diversity<'a>(library: impl Iterator<Item = &'a Topology>) -> f64 {
    entropy_bits(&complexity_histogram(library))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_patterns_have_zero_diversity() {
        let t = Topology::from_ascii("1.\n..");
        let lib = [t.clone(), t.clone(), t];
        assert_eq!(diversity(lib.iter()), 0.0);
    }

    #[test]
    fn empty_library_has_zero_diversity() {
        let lib: Vec<Topology> = Vec::new();
        assert_eq!(diversity(lib.iter()), 0.0);
    }

    #[test]
    fn uniform_two_class_library_has_one_bit() {
        let a = Topology::from_ascii("1...\n....");
        let b = Topology::from_ascii("1.1.\n....");
        let lib = [a.clone(), a, b.clone(), b];
        assert!((diversity(lib.iter()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let mut skewed = HashMap::new();
        skewed.insert(0u32, 9usize);
        skewed.insert(1u32, 1usize);
        let mut uniform = HashMap::new();
        uniform.insert(0u32, 5usize);
        uniform.insert(1u32, 5usize);
        assert!(entropy_bits(&uniform) > entropy_bits(&skewed));
    }

    #[test]
    fn histogram_counts_complexities() {
        let a = Topology::from_ascii("1...\n...."); // (2,2)
        let b = Topology::from_ascii("1.1.\n...."); // (4,2)
        let lib = [a.clone(), a, b];
        let hist = complexity_histogram(lib.iter());
        assert_eq!(hist.len(), 2);
        assert_eq!(hist.values().sum::<usize>(), 3);
        assert_eq!(hist[&Complexity::new(2, 2)], 2);
    }
}
