//! Library summary statistics (the agent's experience documents).

use crate::{diversity, legality, LegalityReport};
use cp_drc::DesignRules;
use cp_squish::Topology;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Joint legality/diversity summary of a pattern library — one row of
/// Table 1, and the payload of the Figure-10 experience documents the
/// LLM agent learns extension-method selection from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryStats {
    /// Number of topologies evaluated.
    pub total: usize,
    /// Number that legalized DRC-clean.
    pub legal: usize,
    /// Legality ratio (Eq. 7).
    pub legality: f64,
    /// Diversity of the legal patterns in bits (Eq. 8).
    pub diversity: f64,
    /// Mean topology density of the legal patterns.
    pub mean_density: f64,
}

impl LibraryStats {
    /// Evaluates a library end to end: legalize every topology once,
    /// then measure diversity over the legal survivors.
    #[must_use]
    pub fn evaluate<'a>(
        topologies: impl Iterator<Item = &'a Topology>,
        frame_nm: i64,
        rules: &DesignRules,
        rng: &mut impl Rng,
    ) -> LibraryStats {
        let report = legality(topologies, frame_nm, rules, rng);
        LibraryStats::from_report(&report)
    }

    /// Summarizes an existing legality report.
    #[must_use]
    pub fn from_report(report: &LegalityReport) -> LibraryStats {
        let legal = report.legal_count();
        let diversity = diversity(report.legal_topologies());
        let mean_density = if legal == 0 {
            0.0
        } else {
            report
                .legal_topologies()
                .map(Topology::density)
                .sum::<f64>()
                / legal as f64
        };
        LibraryStats {
            total: report.total(),
            legal,
            legality: report.ratio(),
            diversity,
            mean_density,
        }
    }

    /// Diversity of raw topologies without legalization — used for the
    /// "Real Patterns" reference rows of Table 1 (real patterns have no
    /// legality entry).
    #[must_use]
    pub fn reference<'a>(topologies: impl Iterator<Item = &'a Topology> + Clone) -> LibraryStats {
        let total = topologies.clone().count();
        let diversity = diversity(topologies.clone());
        let mean_density = if total == 0 {
            0.0
        } else {
            topologies.map(Topology::density).sum::<f64>() / total as f64
        };
        LibraryStats {
            total,
            legal: total,
            legality: f64::NAN,
            diversity,
            mean_density,
        }
    }
}

impl std::fmt::Display for LibraryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.legality.is_nan() {
            write!(
                f,
                "legality: n/a, diversity: {:.3} ({} patterns)",
                self.diversity, self.total
            )
        } else {
            write!(
                f,
                "legality: {:.2}%, diversity: {:.3} ({}/{} legal)",
                self.legality * 100.0,
                self.diversity,
                self.legal,
                self.total
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn evaluate_combines_legality_and_diversity() {
        let rules = DesignRules::new(20, 20, 400);
        let lib = [
            Topology::from_ascii("11..\n11..\n....\n...."),
            Topology::from_ascii("....\n.11.\n.11.\n...."),
            Topology::from_ascii("1.1.1.1.1.1"), // will fail in 100 nm
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let stats = LibraryStats::evaluate(lib.iter(), 100, &rules, &mut rng);
        assert_eq!(stats.total, 3);
        assert_eq!(stats.legal, 2);
        assert!(stats.mean_density > 0.0);
    }

    #[test]
    fn reference_stats_have_nan_legality() {
        let lib = [Topology::from_ascii("1.\n..")];
        let stats = LibraryStats::reference(lib.iter());
        assert!(stats.legality.is_nan());
        assert_eq!(stats.total, 1);
        let display = stats.to_string();
        assert!(display.contains("n/a"));
    }

    #[test]
    fn display_formats_percentages() {
        let rules = DesignRules::new(20, 20, 400);
        let lib = [Topology::from_ascii("11\n11")];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let stats = LibraryStats::evaluate(lib.iter(), 100, &rules, &mut rng);
        assert!(stats.to_string().contains("100.00%"));
    }
}
