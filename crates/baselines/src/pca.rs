//! Principal-component analysis via deflated power iteration.
//!
//! The linear-auto-encoder substrate behind the CAE/VCAE baselines.

use cp_squish::Topology;

/// A fitted PCA model over flattened topology matrices.
#[derive(Debug, Clone)]
pub struct PcaModel {
    rows: usize,
    cols: usize,
    mean: Vec<f64>,
    /// Component vectors, unit length, row-major `[k][dim]`.
    components: Vec<Vec<f64>>,
    /// Standard deviation of the data along each component.
    sigmas: Vec<f64>,
}

impl PcaModel {
    /// Fits `k` principal components with 30 power iterations each.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, shapes are inconsistent, or `k == 0`.
    #[must_use]
    pub fn fit(data: &[Topology], k: usize) -> PcaModel {
        assert!(!data.is_empty(), "PCA needs data");
        assert!(k > 0, "need at least one component");
        let (rows, cols) = data[0].shape();
        assert!(
            data.iter().all(|t| t.shape() == (rows, cols)),
            "inconsistent topology shapes"
        );
        let dim = rows * cols;
        let m = data.len();
        let mut mean = vec![0.0f64; dim];
        for t in data {
            for (i, &b) in t.as_bytes().iter().enumerate() {
                mean[i] += f64::from(b);
            }
        }
        for v in &mut mean {
            *v /= m as f64;
        }
        // Centred data as f64 rows.
        let centred: Vec<Vec<f64>> = data
            .iter()
            .map(|t| {
                t.as_bytes()
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| f64::from(b) - mean[i])
                    .collect()
            })
            .collect();
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut sigmas = Vec::with_capacity(k);
        for comp_idx in 0..k.min(m) {
            // Deterministic start vector, orthogonalized against earlier
            // components.
            let mut v: Vec<f64> = (0..dim)
                .map(|i| ((i * 2654435761 + comp_idx * 40503) % 1000) as f64 / 1000.0 - 0.5)
                .collect();
            for _ in 0..30 {
                orthogonalize(&mut v, &components);
                let norm = normalize(&mut v);
                if norm < 1e-12 {
                    break;
                }
                // v ← (1/m) Σ_i x_i ⟨x_i, v⟩  (covariance matvec)
                let mut next = vec![0.0f64; dim];
                for x in &centred {
                    let dot: f64 = x.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (n, &xi) in next.iter_mut().zip(x) {
                        *n += xi * dot;
                    }
                }
                for n in &mut next {
                    *n /= m as f64;
                }
                v = next;
            }
            orthogonalize(&mut v, &components);
            let eigen = normalize(&mut v);
            if eigen < 1e-9 {
                // Data rank exhausted: no more meaningful components.
                break;
            }
            // Eigenvalue of the covariance = variance along v.
            sigmas.push(eigen.sqrt());
            components.push(v);
        }
        PcaModel {
            rows,
            cols,
            mean,
            components,
            sigmas,
        }
    }

    /// Training shape `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of fitted components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Standard deviations along the components (√eigenvalues).
    #[must_use]
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Mean density of the training data.
    #[must_use]
    pub fn mean_density(&self) -> f64 {
        self.mean.iter().sum::<f64>() / self.mean.len() as f64
    }

    /// Projects a topology onto the latent space.
    #[must_use]
    pub fn encode(&self, t: &Topology) -> Vec<f64> {
        let x: Vec<f64> = t
            .as_bytes()
            .iter()
            .enumerate()
            .map(|(i, &b)| f64::from(b) - self.mean[i])
            .collect();
        self.components
            .iter()
            .map(|c| c.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Decodes a latent vector to a continuous reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if `z` length differs from the component count.
    #[must_use]
    pub fn decode(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.components.len(), "latent dim mismatch");
        let mut x = self.mean.clone();
        for (zi, comp) in z.iter().zip(&self.components) {
            for (xv, cv) in x.iter_mut().zip(comp) {
                *xv += zi * cv;
            }
        }
        x
    }

    /// Thresholds a continuous reconstruction at `threshold` into a
    /// topology of the training shape.
    #[must_use]
    pub fn binarize(&self, x: &[f64], threshold: f64) -> Topology {
        Topology::from_fn(self.rows, self.cols, |r, c| {
            x[r * self.cols + c] > threshold
        })
    }
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(a, x)| a * x).sum();
        for (vi, bi) in v.iter_mut().zip(b) {
            *vi -= dot * bi;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn striped_data() -> Vec<Topology> {
        (0..8)
            .map(|i| Topology::from_fn(8, 8, move |_, c| (c + i) % 4 < 2))
            .collect()
    }

    #[test]
    fn rank_deficient_data_truncates_components() {
        // Period-4 stripes span a rank-2 centred subspace.
        let pca = PcaModel::fit(&striped_data(), 5);
        assert_eq!(pca.component_count(), 2);
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = PcaModel::fit(&striped_data(), 3);
        let k = pca.component_count();
        for i in 0..k {
            let ci = &pca.components[i];
            let norm: f64 = ci.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for j in 0..i {
                let dot: f64 = ci.iter().zip(&pca.components[j]).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-6, "components {i},{j} not orthogonal");
            }
        }
    }

    #[test]
    fn encode_decode_reconstructs_training_data() {
        let data = striped_data();
        // Stripes with 4 phases live in a low-dimensional subspace.
        let pca = PcaModel::fit(&data, 4);
        let z = pca.encode(&data[0]);
        let x = pca.decode(&z);
        let rec = pca.binarize(&x, 0.5);
        let diff = rec
            .as_bytes()
            .iter()
            .zip(data[0].as_bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff <= 4, "reconstruction differs in {diff} cells");
    }

    #[test]
    fn sigmas_are_nonincreasing() {
        let pca = PcaModel::fit(&striped_data(), 3);
        for w in pca.sigmas().windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "sigmas not sorted: {:?}", pca.sigmas());
        }
    }

    #[test]
    fn mean_density_matches_data() {
        let data = striped_data();
        let pca = PcaModel::fit(&data, 2);
        assert!((pca.mean_density() - 0.5).abs() < 1e-9);
    }
}
