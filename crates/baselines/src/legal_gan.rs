//! LegalGAN: the learned legalization post-processor of Zhang et al.
//!
//! Reimplemented as a *fitted* morphological cleanup network proxy: the
//! minimum horizontal/vertical run lengths are measured from training
//! data, then generation output is (a) smoothed with iterated 3×3
//! majority filtering and (b) pruned of runs shorter than the fitted
//! minima — the two operations a learned legalizer converges to on
//! Manhattan layout data.

use cp_squish::Topology;

/// A fitted topology cleanup operator.
#[derive(Debug, Clone)]
pub struct LegalGan {
    min_run_x: usize,
    min_run_y: usize,
    majority_iters: usize,
}

impl LegalGan {
    /// Fits the minimum run-length statistics from clean training data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    #[must_use]
    pub fn fit(data: &[Topology]) -> LegalGan {
        assert!(!data.is_empty(), "LegalGAN needs training data");
        let mut min_run_x = usize::MAX;
        let mut min_run_y = usize::MAX;
        for t in data {
            for r in 0..t.rows() {
                for (s, e) in t.row_runs(r) {
                    min_run_x = min_run_x.min(e - s + 1);
                }
            }
            for c in 0..t.cols() {
                for (s, e) in t.col_runs(c) {
                    min_run_y = min_run_y.min(e - s + 1);
                }
            }
        }
        LegalGan {
            min_run_x: min_run_x.clamp(1, 8),
            min_run_y: min_run_y.clamp(1, 8),
            majority_iters: 2,
        }
    }

    /// Fitted minimum horizontal run length.
    #[must_use]
    pub fn min_run_x(&self) -> usize {
        self.min_run_x
    }

    /// Fitted minimum vertical run length.
    #[must_use]
    pub fn min_run_y(&self) -> usize {
        self.min_run_y
    }

    /// Cleans a generated topology: majority smoothing, then pruning of
    /// sub-minimum runs along both axes.
    #[must_use]
    pub fn legalize_topology(&self, t: &Topology) -> Topology {
        let mut out = t.clone();
        for _ in 0..self.majority_iters {
            out = majority_filter(&out);
        }
        out = prune_short_runs(&out, self.min_run_x, true);
        prune_short_runs(&out, self.min_run_y, false)
    }
}

/// 3×3 majority vote (out-of-bounds counts as empty).
fn majority_filter(t: &Topology) -> Topology {
    Topology::from_fn(t.rows(), t.cols(), |r, c| {
        let mut ones = 0;
        for dr in -1i32..=1 {
            for dc in -1i32..=1 {
                let rr = r as i32 + dr;
                let cc = c as i32 + dc;
                if rr >= 0
                    && cc >= 0
                    && (rr as usize) < t.rows()
                    && (cc as usize) < t.cols()
                    && t.get(rr as usize, cc as usize)
                {
                    ones += 1;
                }
            }
        }
        ones >= 5
    })
}

/// Clears drawn runs shorter than `min_len` along rows (`horizontal`) or
/// columns.
fn prune_short_runs(t: &Topology, min_len: usize, horizontal: bool) -> Topology {
    let mut out = t.clone();
    if horizontal {
        for r in 0..t.rows() {
            for (s, e) in t.row_runs(r) {
                if e - s + 1 < min_len {
                    for c in s..=e {
                        out.set(r, c, false);
                    }
                }
            }
        }
    } else {
        for c in 0..t.cols() {
            for (s, e) in t.col_runs(c) {
                if e - s + 1 < min_len {
                    for r in s..=e {
                        out.set(r, c, false);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_data() -> Vec<Topology> {
        // 4-wide stripes: min run x = 4 (y runs full height).
        (0..4)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + 4 * i) % 8 < 4))
            .collect()
    }

    #[test]
    fn fit_learns_run_minima() {
        let gan = LegalGan::fit(&clean_data());
        assert_eq!(gan.min_run_x(), 4);
        assert!(gan.min_run_y() >= 8); // capped at 8
    }

    #[test]
    fn isolated_noise_pixels_are_removed() {
        let gan = LegalGan::fit(&clean_data());
        let mut noisy = Topology::filled(16, 16, false);
        noisy.set(3, 3, true);
        noisy.set(10, 12, true);
        let cleaned = gan.legalize_topology(&noisy);
        assert_eq!(cleaned.count_ones(), 0);
    }

    #[test]
    fn solid_blocks_survive_cleanup() {
        let gan = LegalGan::fit(&clean_data());
        let block = Topology::from_fn(16, 16, |r, c| (4..12).contains(&r) && (4..12).contains(&c));
        let cleaned = gan.legalize_topology(&block);
        // The 8×8 interior survives majority filtering (corners may erode).
        assert!(cleaned.count_ones() >= 36, "{}", cleaned.count_ones());
        assert!(cleaned.get(8, 8));
    }

    #[test]
    fn cleanup_reduces_scanline_complexity_of_noise() {
        use cp_squish::complexity;
        let gan = LegalGan::fit(&clean_data());
        let noisy = Topology::from_fn(16, 16, |r, c| (r * 7 + c * 13) % 5 == 0);
        let cleaned = gan.legalize_topology(&noisy);
        let before = complexity(&noisy);
        let after = complexity(&cleaned);
        assert!(after.cx <= before.cx && after.cy <= before.cy);
    }
}
