//! Reimplementations of the baselines ChatPattern is compared against in
//! Table 1 of the paper.
//!
//! Each baseline is a *scaled but mechanistically faithful*
//! reimplementation (see DESIGN.md for the substitution rationale):
//!
//! * [`Cae`] — convolutional auto-encoder proxy: a PCA (linear
//!   auto-encoder) decoder over topology matrices, sampled in latent
//!   space and thresholded. Reconstruction-style decoding produces the
//!   ragged, rule-violating edges that give CAE its very low legality;
//! * [`Vcae`] — the variational variant: latent sampling calibrated to
//!   the empirical latent moments plus density-matched thresholding;
//! * [`LegalGan`] — the learned legalization post-processor: iterated
//!   majority filtering plus pruning of sub-minimum runs, with the
//!   minimum run lengths *fitted from data* rather than hand-coded;
//! * [`LayouTransformer`] — sequential (autoregressive) pattern model
//!   over the topology raster with a fitted neighbourhood context table;
//! * [`DiffPattern`] — the prior-SOTA unconditional discrete diffusion
//!   (one model per style), re-using `cp-diffusion` without conditions;
//! * [`concat_extend`] — DiffPattern w/ Concatenation: the free-size
//!   baseline that stitches independent fixed-size samples with no seam
//!   repair (the configuration whose legality collapses in Table 1).
//!
//! # Example
//!
//! ```
//! use cp_baselines::{Cae, Generator};
//! use cp_squish::Topology;
//! use rand::SeedableRng;
//! let data: Vec<Topology> =
//!     (0..8).map(|i| Topology::from_fn(16, 16, |_, c| (c + i) % 4 < 2)).collect();
//! let cae = Cae::fit(&data, 4);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let sample = cae.generate(16, 16, &mut rng);
//! assert_eq!(sample.shape(), (16, 16));
//! ```

pub mod cae;
pub mod concat;
pub mod diffpattern;
pub mod generator;
pub mod layout_transformer;
pub mod legal_gan;
pub mod pca;
pub mod vcae;

pub use cae::Cae;
pub use concat::concat_extend;
pub use diffpattern::DiffPattern;
pub use generator::Generator;
pub use layout_transformer::LayouTransformer;
pub use legal_gan::LegalGan;
pub use pca::PcaModel;
pub use vcae::Vcae;
