//! DiffPattern baseline: unconditional per-style discrete diffusion.
//!
//! The prior SOTA the paper re-implements for comparison: the same
//! diffusion machinery as ChatPattern's back-end but trained *per style*
//! with no condition input (mixing styles in one unconditional model
//! "can easily lead to a conflict", §4.1 — reproducible here by fitting
//! on the union dataset).

use crate::Generator;
use cp_diffusion::{DiffusionModel, MrfDenoiser, NoiseSchedule, PatternSampler};
use cp_squish::Topology;
use rand::RngCore;

/// An unconditional diffusion generator for one style.
#[derive(Debug, Clone)]
pub struct DiffPattern {
    model: DiffusionModel<MrfDenoiser>,
}

impl DiffPattern {
    /// Fits on a single-style dataset (the paper trains one DiffPattern
    /// per layer).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    #[must_use]
    pub fn fit(data: &[Topology], steps: usize, native_size: usize) -> DiffPattern {
        let denoiser = MrfDenoiser::fit(&[(0, data)], 1.0);
        DiffPattern {
            model: DiffusionModel::new(NoiseSchedule::scaled_default(steps), denoiser, native_size),
        }
    }

    /// Fits on a *mixture* of styles without conditioning — the
    /// configuration whose style conflict motivates ChatPattern's
    /// conditional model.
    ///
    /// # Panics
    ///
    /// Panics if any dataset is empty.
    #[must_use]
    pub fn fit_mixed(datasets: &[&[Topology]], steps: usize, native_size: usize) -> DiffPattern {
        let pooled: Vec<Topology> = datasets.iter().flat_map(|d| d.iter().cloned()).collect();
        DiffPattern::fit(&pooled, steps, native_size)
    }

    /// The underlying diffusion model (for extension experiments).
    #[must_use]
    pub fn model(&self) -> &DiffusionModel<MrfDenoiser> {
        &self.model
    }
}

impl Generator for DiffPattern {
    fn name(&self) -> &str {
        "DiffPattern"
    }

    fn generate(&self, rows: usize, cols: usize, rng: &mut dyn RngCore) -> Topology {
        self.model.generate(rows, cols, None, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn striped() -> Vec<Topology> {
        // 4-wide features at 25% density: comfortably above the denoiser's
        // two-cell minimum-feature regularization, and at a realistic
        // layout density (50%-marginal data is adversarial for the
        // fill-biased regularizer).
        (0..8)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 16 < 4))
            .collect()
    }

    #[test]
    fn generates_requested_shape() {
        let dp = DiffPattern::fit(&striped(), 8, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(dp.generate(16, 16, &mut rng).shape(), (16, 16));
    }

    #[test]
    fn density_tracks_training_distribution() {
        // Localized island data (~10% density); full-frame periodic
        // stripes are degenerate for a local neighbourhood model (see the
        // cp-diffusion MRF tests). Real-dataset tracking is covered by
        // the Table-1 integration tests.
        let islands: Vec<Topology> = (0..8)
            .map(|i| {
                Topology::from_fn(16, 16, move |r, c| {
                    let r0 = 2 + (i * 2) % 8;
                    let c0 = 2 + (i * 3) % 8;
                    (r0..r0 + 5).contains(&r) && (c0..c0 + 5).contains(&c)
                })
            })
            .collect();
        let expected: f64 =
            islands.iter().map(Topology::density).sum::<f64>() / islands.len() as f64;
        let dp = DiffPattern::fit(&islands, 10, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mean: f64 = (0..4)
            .map(|_| dp.generate(16, 16, &mut rng).density())
            .sum::<f64>()
            / 4.0;
        assert!(
            (mean - expected).abs() < 0.2,
            "density {mean} vs {expected}"
        );
    }

    #[test]
    fn mixed_fit_pools_datasets() {
        let dense = striped();
        let sparse: Vec<Topology> = (0..8)
            .map(|i| Topology::from_fn(16, 16, move |r, c| r % 8 == i && c % 8 == 0))
            .collect();
        let mixed = DiffPattern::fit_mixed(&[&dense, &sparse], 8, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = mixed.generate(16, 16, &mut rng);
        assert_eq!(t.shape(), (16, 16));
    }
}
