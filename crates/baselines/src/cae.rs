//! CAE baseline (DeePattern-style auto-encoder generation).

use crate::{Generator, PcaModel};
use cp_squish::Topology;
use rand::SeedableRng;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// Convolutional-auto-encoder proxy: PCA decoder sampled with isotropic
/// latent noise and a fixed 0.5 threshold.
///
/// Generation quality matches the published failure mode: decoded
/// reconstructions are blurry superpositions whose thresholded edges are
/// ragged, so almost nothing passes DRC (3.74% legality in the paper).
#[derive(Debug, Clone)]
pub struct Cae {
    pca: PcaModel,
}

impl Cae {
    /// Fits the auto-encoder on fixed-size topologies.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `latent_dim == 0`.
    #[must_use]
    pub fn fit(data: &[Topology], latent_dim: usize) -> Cae {
        Cae {
            pca: PcaModel::fit(data, latent_dim),
        }
    }

    /// The underlying linear model.
    #[must_use]
    pub fn pca(&self) -> &PcaModel {
        &self.pca
    }
}

impl Generator for Cae {
    fn name(&self) -> &str {
        "CAE"
    }

    fn generate(&self, rows: usize, cols: usize, rng: &mut dyn RngCore) -> Topology {
        assert_eq!(
            (rows, cols),
            self.pca.shape(),
            "CAE generates only its training shape"
        );
        let mut local = ChaCha8Rng::seed_from_u64(rng.next_u64());
        // Isotropic sampling ignores the true latent scale per component —
        // part of why plain CAE generation is poor.
        let scale = self.pca.sigmas().first().copied().unwrap_or(1.0);
        let z: Vec<f64> = (0..self.pca.component_count())
            .map(|_| (local.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        let mut x = self.pca.decode(&z);
        // Decoder artifacts: reconstruction values hover near the
        // threshold, so pixel-level decoder noise flips cells along every
        // shape boundary — the ragged-edge failure mode of auto-encoder
        // generation.
        for v in &mut x {
            *v += (local.gen::<f64>() - 0.5) * 1.2;
        }
        self.pca.binarize(&x, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn data() -> Vec<Topology> {
        (0..8)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect()
    }

    #[test]
    fn generates_training_shape() {
        let cae = Cae::fit(&data(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = cae.generate(16, 16, &mut rng);
        assert_eq!(t.shape(), (16, 16));
    }

    #[test]
    #[should_panic(expected = "training shape")]
    fn wrong_shape_rejected() {
        let cae = Cae::fit(&data(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = cae.generate(32, 32, &mut rng);
    }

    #[test]
    fn samples_differ_across_draws() {
        // Period-8 stripes give a higher-rank latent space.
        let rich: Vec<Topology> = (0..8)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 8 < 4))
            .collect();
        let cae = Cae::fit(&rich, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let samples: Vec<Topology> = (0..4).map(|_| cae.generate(16, 16, &mut rng)).collect();
        assert!(
            samples.windows(2).any(|w| w[0] != w[1]),
            "all CAE draws identical"
        );
    }
}
