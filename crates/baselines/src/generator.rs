//! The common fixed-size generator interface.

use cp_squish::Topology;
use rand::RngCore;

/// A fixed-size topology generator (one Table-1 contender).
pub trait Generator {
    /// Human-readable method name as it appears in Table 1.
    fn name(&self) -> &str;

    /// Generates one `rows × cols` topology.
    fn generate(&self, rows: usize, cols: usize, rng: &mut dyn RngCore) -> Topology;

    /// Generates a library of `count` topologies.
    fn generate_library(
        &self,
        count: usize,
        rows: usize,
        cols: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Topology> {
        (0..count).map(|_| self.generate(rows, cols, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct Empty;

    impl Generator for Empty {
        fn name(&self) -> &str {
            "Empty"
        }
        fn generate(&self, rows: usize, cols: usize, _rng: &mut dyn RngCore) -> Topology {
            Topology::filled(rows, cols, false)
        }
    }

    #[test]
    fn library_generation_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lib = Empty.generate_library(5, 4, 4, &mut rng);
        assert_eq!(lib.len(), 5);
        assert!(lib.iter().all(|t| t.shape() == (4, 4)));
    }
}
