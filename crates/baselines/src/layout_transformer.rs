//! LayouTransformer baseline: sequential (autoregressive) generation.
//!
//! Wen et al. model squish patterns as token sequences with a
//! transformer. The mechanism that matters for Table 1 is *causal
//! sequential* generation — each cell conditioned only on already-emitted
//! cells — so the reimplementation fits an autoregressive raster model
//! `P(bit | 6 causal neighbours)` by counting and samples row-major.
//! Single-pass generation has no global repair step, which is exactly
//! why its legality lands below diffusion in the paper.

use crate::Generator;
use cp_squish::Topology;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CONTEXT_BITS: usize = 6;
const CONTEXTS: usize = 1 << CONTEXT_BITS;

/// A fitted autoregressive raster model.
#[derive(Debug, Clone)]
pub struct LayouTransformer {
    /// `P(bit = 1 | causal context)`.
    table: [f64; CONTEXTS],
}

impl LayouTransformer {
    /// Fits the causal context table with Laplace smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    #[must_use]
    pub fn fit(data: &[Topology], smoothing: f64) -> LayouTransformer {
        assert!(!data.is_empty(), "LayouTransformer needs data");
        let mut ones = [smoothing; CONTEXTS];
        let mut total = [2.0 * smoothing; CONTEXTS];
        for t in data {
            for r in 0..t.rows() {
                for c in 0..t.cols() {
                    let ctx = causal_context(|rr, cc| t.get(rr, cc), t.rows(), t.cols(), r, c);
                    total[ctx] += 1.0;
                    if t.get(r, c) {
                        ones[ctx] += 1.0;
                    }
                }
            }
        }
        let mut table = [0.5f64; CONTEXTS];
        for ctx in 0..CONTEXTS {
            table[ctx] = ones[ctx] / total[ctx];
        }
        LayouTransformer { table }
    }

    /// Fitted `P(bit | context)` table.
    #[must_use]
    pub fn table(&self) -> &[f64; CONTEXTS] {
        &self.table
    }
}

/// Causal context: (left, left−2, up, up−2, up-left, up-right), bits in
/// that order; out-of-raster reads as 0.
fn causal_context(
    get: impl Fn(usize, usize) -> bool,
    rows: usize,
    cols: usize,
    r: usize,
    c: usize,
) -> usize {
    let probe = |rr: i64, cc: i64| -> bool {
        rr >= 0
            && cc >= 0
            && (rr as usize) < rows
            && (cc as usize) < cols
            && get(rr as usize, cc as usize)
    };
    let r = r as i64;
    let c = c as i64;
    let neighbours = [
        probe(r, c - 1),
        probe(r, c - 2),
        probe(r - 1, c),
        probe(r - 2, c),
        probe(r - 1, c - 1),
        probe(r - 1, c + 1),
    ];
    neighbours
        .iter()
        .enumerate()
        .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i))
}

impl Generator for LayouTransformer {
    fn name(&self) -> &str {
        "LayouTransformer"
    }

    fn generate(&self, rows: usize, cols: usize, rng: &mut dyn RngCore) -> Topology {
        let mut local = ChaCha8Rng::seed_from_u64(rng.next_u64());
        let mut t = Topology::filled(rows, cols, false);
        for r in 0..rows {
            for c in 0..cols {
                let ctx = causal_context(|rr, cc| t.get(rr, cc), rows, cols, r, c);
                let p = self.table[ctx];
                t.set(r, c, local.gen::<f64>() < p);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn striped() -> Vec<Topology> {
        (0..8)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect()
    }

    #[test]
    fn table_learns_continuation() {
        let lt = LayouTransformer::fit(&striped(), 1.0);
        // Context "up set, up-left set, left set" (bits 0,2,4) strongly
        // predicts continuation of a solid region in stripe data.
        let ctx = 0b010101;
        assert!(lt.table()[ctx] > 0.5, "p = {}", lt.table()[ctx]);
    }

    #[test]
    fn generated_density_is_plausible() {
        let lt = LayouTransformer::fit(&striped(), 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mean: f64 = (0..6)
            .map(|_| lt.generate(16, 16, &mut rng).density())
            .sum::<f64>()
            / 6.0;
        assert!((mean - 0.5).abs() < 0.2, "density {mean}");
    }

    #[test]
    fn generation_is_free_size() {
        // Autoregressive models can emit any raster size (though quality
        // drifts — the motivation for ChatPattern's extension tools).
        let lt = LayouTransformer::fit(&striped(), 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let t = lt.generate(8, 24, &mut rng);
        assert_eq!(t.shape(), (8, 24));
    }

    #[test]
    fn causal_context_ignores_future_cells() {
        // The context of cell (0,0) is empty by construction.
        let t = Topology::filled(4, 4, true);
        let ctx = causal_context(|r, c| t.get(r, c), 4, 4, 0, 0);
        assert_eq!(ctx, 0);
    }
}
