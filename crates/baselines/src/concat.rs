//! DiffPattern w/ Concatenation: the free-size baseline.
//!
//! Larger patterns are produced by stitching *already-legalized* tiles
//! edge to edge. Each tile is DRC-clean on its own, but its geometry is
//! frozen: shapes from adjacent tiles land arbitrarily close across the
//! boundary, and nothing can repair the seam afterwards. This is why the
//! baseline's legality collapses as the target grows (Table 1: 0.29% at
//! 512² and ~0% at 1024² for the dense layer) while ChatPattern — which
//! extends the *topology* and legalizes the assembled pattern globally —
//! keeps producing legal patterns.

use crate::Generator;
use cp_geom::{Layout, Rect};
use cp_legalize::Legalizer;
use rand::RngCore;

/// Builds a `tiles_x × tiles_y` assembly of independently generated and
/// legalized `tile_cells²` patterns, each in a `tile_frame_nm²` frame.
///
/// Returns `None` when some tile fails to legalize after `retries`
/// attempts (tile selection, as every squish-based method may apply).
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the paper's experiment knobs one-to-one
pub fn concat_extend(
    generator: &dyn Generator,
    tile_cells: usize,
    tiles_x: usize,
    tiles_y: usize,
    tile_frame_nm: i64,
    legalizer: &Legalizer,
    retries: usize,
    rng: &mut dyn RngCore,
) -> Option<Layout> {
    let frame = Rect::new(
        0,
        0,
        tile_frame_nm * tiles_x as i64,
        tile_frame_nm * tiles_y as i64,
    );
    let mut assembled = Layout::new(frame);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let mut tile = None;
            for _ in 0..retries.max(1) {
                let topology = generator.generate(tile_cells, tile_cells, rng);
                let mut local = {
                    use rand::SeedableRng;
                    rand_chacha::ChaCha8Rng::seed_from_u64(rng.next_u64())
                };
                if let Ok(pattern) =
                    legalizer.legalize(&topology, tile_frame_nm, tile_frame_nm, &mut local)
                {
                    tile = Some(pattern);
                    break;
                }
            }
            let tile = tile?;
            let layout = tile.to_layout();
            let dx = tile_frame_nm * tx as i64;
            let dy = tile_frame_nm * ty as i64;
            for r in layout.rects() {
                assembled.push(r.translated(dx, dy));
            }
        }
    }
    Some(assembled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_drc::{check_pattern, DesignRules};
    use cp_squish::{SquishPattern, Topology};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Shapes hug the right edge: concatenation must create seam
    /// violations.
    struct EdgeHugger;

    impl Generator for EdgeHugger {
        fn name(&self) -> &str {
            "EdgeHugger"
        }
        fn generate(&self, rows: usize, cols: usize, _rng: &mut dyn RngCore) -> Topology {
            // Bars one cell away from the left/right edges: after
            // legalization in a tight frame the border columns stay a few
            // nm wide, so the seam gap is far below the space rule.
            Topology::from_fn(rows, cols, |_, c| c == 1 || c == cols - 2)
        }
    }

    /// Shapes comfortably inside: concatenation is safe.
    struct Interior;

    impl Generator for Interior {
        fn name(&self) -> &str {
            "Interior"
        }
        fn generate(&self, rows: usize, cols: usize, _rng: &mut dyn RngCore) -> Topology {
            Topology::from_fn(rows, cols, |r, c| {
                (rows / 4..3 * rows / 4).contains(&r) && (cols / 4..3 * cols / 4).contains(&c)
            })
        }
    }

    fn rules() -> DesignRules {
        DesignRules::new(40, 40, 3200)
    }

    #[test]
    fn assembly_covers_full_frame() {
        let legalizer = Legalizer::new(rules());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layout = concat_extend(&Interior, 8, 2, 3, 512, &legalizer, 3, &mut rng)
            .expect("tiles legalize");
        assert_eq!(layout.frame(), Rect::new(0, 0, 1024, 1536));
        assert!(!layout.is_empty());
    }

    #[test]
    fn interior_tiles_stay_clean_after_concat() {
        let legalizer = Legalizer::new(rules());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let layout = concat_extend(&Interior, 8, 2, 2, 512, &legalizer, 3, &mut rng)
            .expect("tiles legalize");
        let squish = SquishPattern::from_layout(&layout);
        assert!(check_pattern(&squish, &rules()).is_clean());
    }

    #[test]
    fn edge_hugging_tiles_violate_at_seams() {
        let legalizer = Legalizer::new(rules());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let layout = concat_extend(&EdgeHugger, 8, 2, 1, 160, &legalizer, 3, &mut rng)
            .expect("tiles legalize");
        let squish = SquishPattern::from_layout(&layout);
        let report = check_pattern(&squish, &rules());
        assert!(
            !report.is_clean(),
            "edge-hugging tiles must violate across the frozen seam"
        );
    }
}
