//! VCAE baseline (variational auto-encoder generation).

use crate::{Generator, PcaModel};
use cp_squish::Topology;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Variational CAE proxy: the same linear decoder as [`crate::Cae`], but
/// latent samples follow the *fitted per-component scales* (the learned
/// posterior moments a VAE would regularize toward) and the binarization
/// threshold is chosen per sample to match the training density.
///
/// Both calibrations make decoded samples markedly more plausible than
/// plain CAE — the published gap (3.74% → 84.51% with LegalGAN) stems
/// from exactly this latent-space discipline plus learned legalization.
#[derive(Debug, Clone)]
pub struct Vcae {
    pca: PcaModel,
}

impl Vcae {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `latent_dim == 0`.
    #[must_use]
    pub fn fit(data: &[Topology], latent_dim: usize) -> Vcae {
        Vcae {
            pca: PcaModel::fit(data, latent_dim),
        }
    }

    /// The underlying linear model.
    #[must_use]
    pub fn pca(&self) -> &PcaModel {
        &self.pca
    }
}

impl Generator for Vcae {
    fn name(&self) -> &str {
        "VCAE"
    }

    fn generate(&self, rows: usize, cols: usize, rng: &mut dyn RngCore) -> Topology {
        assert_eq!(
            (rows, cols),
            self.pca.shape(),
            "VCAE generates only its training shape"
        );
        let mut local = ChaCha8Rng::seed_from_u64(rng.next_u64());
        // Gaussian-ish latent draw scaled by the fitted σ per component.
        let z: Vec<f64> = self
            .pca
            .sigmas()
            .iter()
            .map(|&s| {
                let u: f64 = local.gen::<f64>() + local.gen::<f64>() + local.gen::<f64>();
                (u * 2.0 - 3.0) * s // Irwin–Hall(3) centred ≈ N(0, 1/2)·2
            })
            .collect();
        let mut x = self.pca.decode(&z);
        // The KL-regularized decoder is better calibrated than plain CAE:
        // residual pixel noise is markedly smaller.
        for v in &mut x {
            *v += (local.gen::<f64>() - 0.5) * 0.2;
        }
        // Density-matched threshold: pick the quantile that reproduces the
        // training density.
        let mut sorted = x.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite reconstruction"));
        let keep = (x.len() as f64 * self.pca.mean_density()).round() as usize;
        let threshold = if keep == 0 {
            f64::INFINITY
        } else {
            sorted[x.len() - keep.min(x.len())]
        };
        self.pca.binarize(&x, threshold - 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Topology> {
        (0..8)
            .map(|i| Topology::from_fn(16, 16, move |_, c| (c + i) % 4 < 2))
            .collect()
    }

    #[test]
    fn density_tracks_training_data() {
        let vcae = Vcae::fit(&data(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean: f64 = (0..8)
            .map(|_| vcae.generate(16, 16, &mut rng).density())
            .sum::<f64>()
            / 8.0;
        assert!((mean - 0.5).abs() < 0.1, "density {mean}");
    }

    #[test]
    fn vcae_tracks_density_better_than_cae() {
        use crate::Cae;
        let data = data();
        let target = 0.5f64;
        let vcae = Vcae::fit(&data, 4);
        let cae = Cae::fit(&data, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let verr: f64 = (0..8)
            .map(|_| (vcae.generate(16, 16, &mut rng).density() - target).abs())
            .sum::<f64>();
        let cerr: f64 = (0..8)
            .map(|_| (cae.generate(16, 16, &mut rng).density() - target).abs())
            .sum::<f64>();
        assert!(verr <= cerr + 0.2, "vcae {verr:.3} vs cae {cerr:.3}");
    }
}
