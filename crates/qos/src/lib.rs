//! `cp_qos` — multi-tenant quality of service for the ChatPattern
//! fleet.
//!
//! A shared serving fleet needs more than a single bounded FIFO: one
//! chatty tenant must not be able to monopolize every worker, and an
//! overloaded tenant should get a typed *retry-after* signal instead
//! of an ever-growing queue. This crate is the policy layer the engine
//! and backends plug into:
//!
//! * [`Lane`] — the three priority classes (interactive chat >
//!   generate/extend > batch evaluation);
//! * [`LaneWeights`] — how many dequeues each lane gets per
//!   weighted-fair cycle (`--lane-weights`);
//! * [`TenantQuota`] / [`QosConfig`] — per-tenant admission limits:
//!   concurrent jobs, open sessions and a token-bucket turn budget
//!   (`--tenant-quota`);
//! * [`QosGate`] — the admission gate itself: `try_admit` either
//!   reserves capacity or answers with a [`Rejection`] carrying
//!   `retry_after_ms`;
//! * [`FairQueue`] — a bounded, lane-aware, tenant-round-robin queue
//!   the thread-pool backends use instead of a plain `VecDeque`, so a
//!   flood from one tenant cannot starve the rest;
//! * [`TenantLedger`] / [`TenantLaneStats`] — per-(tenant, lane)
//!   admitted/rejected/completed/queue-time counters that surface in
//!   `EngineStats` and merge across a router fleet;
//! * [`jain_index`] — the fairness metric the replay load generator
//!   records into `BENCH_ENGINE.json`.
//!
//! The crate is deliberately engine-agnostic: it never sees a
//! `PatternRequest` (the engine classifies requests into a [`Lane`]),
//! so the same primitives can gate any executor.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// The tenant every un-tagged request is accounted to. Wire envelopes
/// without a `tenant` field land here, which keeps pre-QoS clients
/// working unchanged.
pub const DEFAULT_TENANT: &str = "default";

/// Retry hint handed out when a quota rejection has no natural
/// deadline (concurrent-job and open-session caps free up whenever
/// some in-flight work finishes; turn budgets compute an exact
/// refill time instead).
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

// ------------------------------------------------------------------ lanes

/// Priority class of a request. Lower discriminant = higher priority.
///
/// The engine classifies every request: chat turns and session
/// operations are `Interactive` (a human is waiting mid-conversation),
/// one-shot generation work is `Standard`, and evaluation sweeps are
/// `Batch`. Dequeue order is weighted-fair, not strict — see
/// [`FairQueue`] — so even `Batch` makes progress under interactive
/// load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// Chat turns and session operations: a user is waiting.
    Interactive,
    /// Generate / extend / modify / legalize: one-shot foreground work.
    Standard,
    /// Evaluation and other offline sweeps.
    Batch,
}

/// Number of lanes — the fixed size of every per-lane array.
pub const LANE_COUNT: usize = 3;

/// Every lane, in strict priority order (the order [`FairQueue`]
/// scans within one credit cycle).
pub const LANES: [Lane; LANE_COUNT] = [Lane::Interactive, Lane::Standard, Lane::Batch];

impl Lane {
    /// Stable lowercase name, used in stats rows and flag parsing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Standard => "standard",
            Lane::Batch => "batch",
        }
    }

    /// Position in [`LANES`] / every per-lane array.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Dequeues granted to each lane per weighted-fair cycle.
///
/// Weights are clamped to at least 1 so no lane can be configured
/// into total starvation: over any full cycle every non-empty lane is
/// served at least once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneWeights {
    /// Credits for [`Lane::Interactive`] per cycle.
    pub interactive: u32,
    /// Credits for [`Lane::Standard`] per cycle.
    pub standard: u32,
    /// Credits for [`Lane::Batch`] per cycle.
    pub batch: u32,
}

impl Default for LaneWeights {
    fn default() -> LaneWeights {
        LaneWeights {
            interactive: 4,
            standard: 2,
            batch: 1,
        }
    }
}

impl LaneWeights {
    /// The per-lane credit array, in [`LANES`] order, each at least 1.
    #[must_use]
    pub fn credits(&self) -> [u32; LANE_COUNT] {
        [
            self.interactive.max(1),
            self.standard.max(1),
            self.batch.max(1),
        ]
    }

    /// Sum of all (clamped) weights — one full fair cycle.
    #[must_use]
    pub fn cycle(&self) -> u32 {
        self.credits().iter().sum()
    }

    /// Parses a `--lane-weights` spec: either bare
    /// `"INTERACTIVE,STANDARD,BATCH"` (e.g. `"4,2,1"`) or named
    /// `"interactive=4,standard=2,batch=1"` (any subset overrides the
    /// default).
    pub fn parse(spec: &str) -> Result<LaneWeights, String> {
        let mut weights = LaneWeights::default();
        let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
        let named = parts.iter().any(|p| p.contains('='));
        if !named {
            if parts.len() != 3 {
                return Err(format!(
                    "lane weights need 3 comma-separated numbers or name=value pairs, got {spec:?}"
                ));
            }
            weights.interactive = parse_u32("interactive weight", parts[0])?;
            weights.standard = parse_u32("standard weight", parts[1])?;
            weights.batch = parse_u32("batch weight", parts[2])?;
            return Ok(weights);
        }
        for part in parts {
            if part.is_empty() {
                continue;
            }
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("lane weight {part:?} is not name=value"))?;
            let value = parse_u32(name.trim(), value.trim())?;
            match name.trim() {
                "interactive" => weights.interactive = value,
                "standard" => weights.standard = value,
                "batch" => weights.batch = value,
                other => {
                    return Err(format!(
                        "unknown lane {other:?} (expected interactive, standard or batch)"
                    ))
                }
            }
        }
        Ok(weights)
    }
}

fn parse_u32(name: &str, value: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|_| format!("{name} needs an unsigned integer, got {value:?}"))
}

// ----------------------------------------------------------------- quotas

/// Admission limits for one tenant. Zero always means *unlimited*, so
/// the default quota admits everything — QoS is opt-in per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Maximum concurrently executing/queued jobs (leaders only;
    /// cache hits and coalesced followers do not occupy a slot).
    pub max_inflight: u64,
    /// Maximum concurrently open sessions.
    pub max_sessions: u64,
    /// Sustained chat/session-turn rate (token bucket refill, per
    /// second).
    pub turns_per_sec: f64,
    /// Token-bucket burst capacity; zero defaults to
    /// `max(1, turns_per_sec)`.
    pub turn_burst: f64,
}

impl TenantQuota {
    /// Effective burst size of the turn bucket.
    #[must_use]
    pub fn burst(&self) -> f64 {
        if self.turn_burst > 0.0 {
            self.turn_burst
        } else {
            self.turns_per_sec.max(1.0)
        }
    }

    /// Parses a quota spec: comma-separated `name=value` pairs with
    /// names `inflight`, `sessions`, `tps` (turns per second) and
    /// `burst`, e.g. `"inflight=4,sessions=8,tps=2,burst=4"`. Omitted
    /// fields stay unlimited.
    pub fn parse(spec: &str) -> Result<TenantQuota, String> {
        let mut quota = TenantQuota::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("quota field {part:?} is not name=value"))?;
            match name.trim() {
                "inflight" => {
                    quota.max_inflight = value.trim().parse::<u64>().map_err(|_| {
                        format!("inflight needs an unsigned integer, got {value:?}")
                    })?;
                }
                "sessions" => {
                    quota.max_sessions = value.trim().parse::<u64>().map_err(|_| {
                        format!("sessions needs an unsigned integer, got {value:?}")
                    })?;
                }
                "tps" => {
                    quota.turns_per_sec = parse_rate("tps", value.trim())?;
                }
                "burst" => {
                    quota.turn_burst = parse_rate("burst", value.trim())?;
                }
                other => {
                    return Err(format!(
                        "unknown quota field {other:?} (expected inflight, sessions, tps or burst)"
                    ))
                }
            }
        }
        Ok(quota)
    }
}

fn parse_rate(name: &str, value: &str) -> Result<f64, String> {
    let rate = value
        .parse::<f64>()
        .map_err(|_| format!("{name} needs a number, got {value:?}"))?;
    if rate < 0.0 || !rate.is_finite() {
        return Err(format!("{name} must be a finite non-negative number"));
    }
    Ok(rate)
}

/// The whole QoS policy of one engine: a default quota, per-tenant
/// overrides and the lane weights.
#[derive(Debug, Clone, Default)]
pub struct QosConfig {
    /// Quota applied to tenants without an explicit override.
    pub default_quota: TenantQuota,
    /// Per-tenant overrides (full replacement, not merge).
    pub tenant_quotas: HashMap<String, TenantQuota>,
    /// Weighted-fair dequeue credits.
    pub lane_weights: LaneWeights,
}

impl QosConfig {
    /// A config with default (unlimited) quotas and default weights.
    #[must_use]
    pub fn new() -> QosConfig {
        QosConfig {
            default_quota: TenantQuota::default(),
            tenant_quotas: HashMap::new(),
            lane_weights: LaneWeights::default(),
        }
    }

    /// The effective quota of a tenant.
    #[must_use]
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.tenant_quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// Applies one `--tenant-quota` flag value: either `"SPEC"`
    /// (sets the default quota) or `"TENANT:SPEC"` (overrides one
    /// tenant), where SPEC is [`TenantQuota::parse`] syntax. The flag
    /// is repeatable; later values win.
    pub fn apply_quota_flag(&mut self, flag: &str) -> Result<(), String> {
        match flag.split_once(':') {
            Some((tenant, spec)) => {
                let tenant = tenant.trim();
                if tenant.is_empty() {
                    return Err("tenant name before ':' is empty".to_owned());
                }
                let quota = TenantQuota::parse(spec)?;
                self.tenant_quotas.insert(tenant.to_owned(), quota);
            }
            None => self.default_quota = TenantQuota::parse(flag)?,
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- gate

/// Why an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's concurrent-job quota is exhausted.
    Inflight,
    /// The tenant's open-session cap is reached.
    Sessions,
    /// The tenant's turn budget (token bucket) is empty.
    TurnBudget,
}

/// A refused admission, with the hint clients should wait before
/// retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Milliseconds the caller should back off before retrying.
    pub retry_after_ms: u64,
    /// Which quota refused the request.
    pub reason: RejectReason,
}

/// What the admission of one request costs, beyond one in-flight slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitClass {
    /// Consumes one token from the tenant's turn budget (chat turns).
    pub consumes_turn: bool,
    /// Reserves one open-session slot (session open/restore).
    pub opens_session: bool,
}

struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, now: Instant, quota: &TenantQuota) -> Result<(), u64> {
        let burst = quota.burst();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * quota.turns_per_sec).min(burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        let secs = deficit / quota.turns_per_sec.max(f64::MIN_POSITIVE);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let millis = (secs * 1000.0).ceil().min(3_600_000.0) as u64;
        Err(millis.max(1))
    }
}

struct TenantState {
    inflight: u64,
    sessions: u64,
    bucket: TokenBucket,
}

/// The admission gate: per-tenant in-flight counts, open-session
/// reservations and turn token buckets behind one mutex.
///
/// Call [`QosGate::try_admit`] before handing a request to the
/// executor; on success the in-flight slot (and, for session-opening
/// requests, a session reservation) is held until the matching
/// [`QosGate::release`] / [`QosGate::release_session`].
pub struct QosGate {
    config: QosConfig,
    tenants: std::sync::Mutex<HashMap<String, TenantState>>,
}

impl QosGate {
    /// A gate enforcing `config`.
    #[must_use]
    pub fn new(config: QosConfig) -> QosGate {
        QosGate {
            config,
            tenants: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The policy this gate enforces.
    #[must_use]
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    /// Admits or refuses one request for `tenant`. On success one
    /// in-flight slot is reserved (plus a session slot when
    /// `class.opens_session`); the caller must pair it with
    /// [`QosGate::release`] once the request leaves the system.
    pub fn try_admit(&self, tenant: &str, class: AdmitClass) -> Result<(), Rejection> {
        let quota = self.config.quota_for(tenant);
        let mut tenants = self.tenants.lock().expect("qos gate lock");
        let state = tenants
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantState {
                inflight: 0,
                sessions: 0,
                bucket: TokenBucket {
                    tokens: quota.burst(),
                    last_refill: Instant::now(),
                },
            });
        if quota.max_inflight > 0 && state.inflight >= quota.max_inflight {
            return Err(Rejection {
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
                reason: RejectReason::Inflight,
            });
        }
        if class.opens_session && quota.max_sessions > 0 && state.sessions >= quota.max_sessions {
            return Err(Rejection {
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
                reason: RejectReason::Sessions,
            });
        }
        if class.consumes_turn && quota.turns_per_sec > 0.0 {
            if let Err(retry_after_ms) = state.bucket.try_take(Instant::now(), &quota) {
                return Err(Rejection {
                    retry_after_ms,
                    reason: RejectReason::TurnBudget,
                });
            }
        }
        state.inflight += 1;
        if class.opens_session {
            state.sessions += 1;
        }
        Ok(())
    }

    /// Returns the in-flight slot of an admitted request.
    pub fn release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("qos gate lock");
        if let Some(state) = tenants.get_mut(tenant) {
            state.inflight = state.inflight.saturating_sub(1);
        }
    }

    /// Returns a session reservation: call when a session-opening
    /// request fails (or is abandoned), and when a session closes.
    pub fn release_session(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("qos gate lock");
        if let Some(state) = tenants.get_mut(tenant) {
            state.sessions = state.sessions.saturating_sub(1);
        }
    }

    /// Current (inflight, sessions) gauges of a tenant, for tests and
    /// diagnostics.
    #[must_use]
    pub fn gauges(&self, tenant: &str) -> (u64, u64) {
        let tenants = self.tenants.lock().expect("qos gate lock");
        tenants
            .get(tenant)
            .map_or((0, 0), |s| (s.inflight, s.sessions))
    }
}

// ------------------------------------------------------------ fair queue

struct LaneQueue<T> {
    tenants: HashMap<String, VecDeque<(T, Instant)>>,
    /// Round-robin order over tenants with queued work.
    order: VecDeque<String>,
    len: usize,
}

impl<T> LaneQueue<T> {
    fn new() -> LaneQueue<T> {
        LaneQueue {
            tenants: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
        }
    }

    fn push(&mut self, tenant: &str, item: T) {
        match self.tenants.get_mut(tenant) {
            Some(queue) => queue.push_back((item, Instant::now())),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back((item, Instant::now()));
                self.tenants.insert(tenant.to_owned(), queue);
                self.order.push_back(tenant.to_owned());
            }
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(T, Instant)> {
        let tenant = self.order.pop_front()?;
        let queue = self.tenants.get_mut(&tenant).expect("tenant has a queue");
        let entry = queue.pop_front().expect("queued tenant is non-empty");
        self.len -= 1;
        if queue.is_empty() {
            self.tenants.remove(&tenant);
        } else {
            // One item per visit: round-robin across tenants.
            self.order.push_back(tenant);
        }
        Some(entry)
    }

    /// Pops up to `limit` items for which `matches` holds, visiting
    /// tenants in round-robin order and taking only *consecutive*
    /// matching items from the front of each tenant's FIFO — an item
    /// never overtakes an earlier non-matching item of its own tenant.
    /// Tenants keep their round-robin position (riders drained here
    /// piggyback on a leader that already paid for its dequeue).
    fn drain_matching(&mut self, limit: usize, matches: &dyn Fn(&T) -> bool, out: &mut Vec<T>) {
        let mut remaining = limit;
        let mut kept: Vec<String> = Vec::with_capacity(self.order.len());
        while remaining > 0 {
            let Some(tenant) = self.order.pop_front() else {
                break;
            };
            let queue = self.tenants.get_mut(&tenant).expect("tenant has a queue");
            while remaining > 0 && queue.front().is_some_and(|(item, _)| matches(item)) {
                let (item, _) = queue.pop_front().expect("front was just observed");
                out.push(item);
                self.len -= 1;
                remaining -= 1;
            }
            if queue.is_empty() {
                self.tenants.remove(&tenant);
            } else {
                kept.push(tenant);
            }
        }
        for tenant in kept.into_iter().rev() {
            self.order.push_front(tenant);
        }
    }
}

/// A bounded, lane-aware, tenant-fair queue.
///
/// * **Across lanes** dequeue is weighted deficit round-robin: each
///   lane holds `weight` credits per cycle; the highest-priority
///   non-empty lane with credit left is served, and when every
///   non-empty lane is out of credit the cycle resets. A saturated
///   queue therefore serves lanes in their weight ratio, and any
///   non-empty lane waits at most one cycle
///   ([`LaneWeights::cycle`] pops) between services — no starvation.
/// * **Within a lane** tenants are served round-robin, one item per
///   visit, so a tenant with 1000 queued jobs and a tenant with 1
///   alternate instead of the flood going first.
/// * **Within a tenant** order is strict FIFO.
///
/// `pop` also reports how long the item waited, which feeds the
/// per-tenant queue-time stats.
pub struct FairQueue<T> {
    lanes: [LaneQueue<T>; LANE_COUNT],
    weights: [u32; LANE_COUNT],
    credits: [u32; LANE_COUNT],
    capacity: usize,
    len: usize,
}

impl<T> FairQueue<T> {
    /// A queue holding at most `capacity` items across all lanes.
    #[must_use]
    pub fn new(capacity: usize, weights: LaneWeights) -> FairQueue<T> {
        let credits = weights.credits();
        FairQueue {
            lanes: [LaneQueue::new(), LaneQueue::new(), LaneQueue::new()],
            weights: credits,
            credits,
            capacity,
            len: 0,
        }
    }

    /// Items currently queued, across all lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues an item, or hands it back when the queue is full.
    pub fn push(&mut self, lane: Lane, tenant: &str, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.lanes[lane.index()].push(tenant, item);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next item by weighted-fair order, with the time
    /// it spent queued.
    pub fn pop(&mut self) -> Option<(T, Duration)> {
        if self.len == 0 {
            return None;
        }
        loop {
            for index in 0..LANE_COUNT {
                if self.lanes[index].len > 0 && self.credits[index] > 0 {
                    self.credits[index] -= 1;
                    let (item, queued_at) = self.lanes[index].pop().expect("lane is non-empty");
                    self.len -= 1;
                    return Some((item, queued_at.elapsed()));
                }
            }
            // Every non-empty lane is out of credit: start a new cycle.
            self.credits = self.weights;
        }
    }

    /// Removes up to `limit` queued items for which `matches` holds —
    /// the microbatch drain. Lanes are visited in priority order and,
    /// within a lane, tenants in round-robin order; only *consecutive*
    /// matching items at the front of each tenant's FIFO are taken, so
    /// no item ever overtakes an earlier non-matching item of its own
    /// tenant. Drained riders consume neither lane credits nor
    /// round-robin turns: they ride on a leader whose [`FairQueue::pop`]
    /// already paid for the dequeue.
    pub fn drain_matching<F: Fn(&T) -> bool>(&mut self, limit: usize, matches: F) -> Vec<T> {
        let mut out = Vec::new();
        if limit == 0 || self.len == 0 {
            return out;
        }
        for index in 0..LANE_COUNT {
            let remaining = limit - out.len();
            if remaining == 0 {
                break;
            }
            if self.lanes[index].len > 0 {
                self.lanes[index].drain_matching(remaining, &matches, &mut out);
            }
        }
        self.len -= out.len();
        out
    }

    /// Removes and returns every queued item (shutdown drain), in
    /// fair-dequeue order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut items = Vec::with_capacity(self.len);
        while let Some((item, _)) = self.pop() {
            items.push(item);
        }
        items
    }
}

// ------------------------------------------------------------------ stats

/// One per-(tenant, lane) accounting row, as surfaced in
/// `EngineStats` and merged across a fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantLaneStats {
    /// Tenant name.
    pub tenant: String,
    /// Lane name ([`Lane::name`]).
    pub lane: String,
    /// Requests admitted past the QoS gate.
    pub admitted: u64,
    /// Requests refused with `Overloaded`.
    pub rejected: u64,
    /// Leader executions finished (success or error).
    pub completed: u64,
    /// Total microseconds completed leaders spent queued.
    pub queue_micros: u64,
}

/// Merges stats rows from many sources, summing by (tenant, lane) and
/// returning rows sorted by tenant then lane name — the deterministic
/// shape `EngineStats::merge` and the router's fleet view rely on.
#[must_use]
pub fn merge_rows(sources: &[&[TenantLaneStats]]) -> Vec<TenantLaneStats> {
    let mut merged: HashMap<(String, String), TenantLaneStats> = HashMap::new();
    for rows in sources {
        for row in *rows {
            let entry = merged
                .entry((row.tenant.clone(), row.lane.clone()))
                .or_insert_with(|| TenantLaneStats {
                    tenant: row.tenant.clone(),
                    lane: row.lane.clone(),
                    ..TenantLaneStats::default()
                });
            entry.admitted += row.admitted;
            entry.rejected += row.rejected;
            entry.completed += row.completed;
            entry.queue_micros += row.queue_micros;
        }
    }
    let mut rows: Vec<TenantLaneStats> = merged.into_values().collect();
    rows.sort_by(|a, b| (&a.tenant, &a.lane).cmp(&(&b.tenant, &b.lane)));
    rows
}

#[derive(Default)]
struct LedgerRow {
    admitted: u64,
    rejected: u64,
    completed: u64,
    queue_micros: u64,
}

/// Thread-safe per-(tenant, lane) counters. The engine records
/// admissions/rejections, the backends record queue time and
/// completions, and `EngineStats` snapshots the whole ledger.
#[derive(Default)]
pub struct TenantLedger {
    rows: std::sync::Mutex<HashMap<(String, Lane), LedgerRow>>,
}

impl TenantLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    fn with_row(&self, tenant: &str, lane: Lane, update: impl FnOnce(&mut LedgerRow)) {
        let mut rows = self.rows.lock().expect("ledger lock");
        let row = rows.entry((tenant.to_owned(), lane)).or_default();
        update(row);
    }

    /// Counts one admitted request.
    pub fn record_admitted(&self, tenant: &str, lane: Lane) {
        self.with_row(tenant, lane, |row| row.admitted += 1);
    }

    /// Counts one `Overloaded` rejection.
    pub fn record_rejected(&self, tenant: &str, lane: Lane) {
        self.with_row(tenant, lane, |row| row.rejected += 1);
    }

    /// Counts one finished leader execution and the time it waited in
    /// a backend queue.
    pub fn record_completed(&self, tenant: &str, lane: Lane, queue_micros: u64) {
        self.with_row(tenant, lane, |row| {
            row.completed += 1;
            row.queue_micros += queue_micros;
        });
    }

    /// The current rows, sorted by tenant then lane name.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TenantLaneStats> {
        let rows = self.rows.lock().expect("ledger lock");
        let mut snapshot: Vec<TenantLaneStats> = rows
            .iter()
            .map(|((tenant, lane), row)| TenantLaneStats {
                tenant: tenant.clone(),
                lane: lane.name().to_owned(),
                admitted: row.admitted,
                rejected: row.rejected,
                completed: row.completed,
                queue_micros: row.queue_micros,
            })
            .collect();
        snapshot.sort_by(|a, b| (&a.tenant, &a.lane).cmp(&(&b.tenant, &b.lane)));
        snapshot
    }
}

// --------------------------------------------------------------- fairness

/// Jain's fairness index over non-negative per-tenant measurements:
/// `(Σx)² / (n · Σx²)`. 1.0 means perfectly equal; `1/n` means one
/// tenant got everything. Empty or all-zero input reports 1.0 (nothing
/// was unfair).
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let squares: f64 = values.iter().map(|v| v * v).sum();
    if squares <= 0.0 {
        return 1.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = values.len() as f64;
    (sum * sum) / (n * squares)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_names_and_order_are_stable() {
        assert_eq!(LANES.map(Lane::name), ["interactive", "standard", "batch"]);
        assert!(Lane::Interactive < Lane::Standard && Lane::Standard < Lane::Batch);
        for (index, lane) in LANES.iter().enumerate() {
            assert_eq!(lane.index(), index);
        }
    }

    #[test]
    fn lane_weights_parse_both_syntaxes() {
        let bare = LaneWeights::parse("5,3,2").expect("bare parses");
        assert_eq!(
            bare,
            LaneWeights {
                interactive: 5,
                standard: 3,
                batch: 2
            }
        );
        let named = LaneWeights::parse("batch=7, interactive=9").expect("named parses");
        assert_eq!(named.interactive, 9);
        assert_eq!(named.standard, LaneWeights::default().standard);
        assert_eq!(named.batch, 7);
        assert!(LaneWeights::parse("1,2").is_err());
        assert!(LaneWeights::parse("express=1").is_err());
        // A zero weight is clamped at use, never a starved lane.
        let zeroed = LaneWeights::parse("0,0,0").expect("zeros parse");
        assert_eq!(zeroed.credits(), [1, 1, 1]);
    }

    #[test]
    fn quota_parse_round_trips_fields() {
        let quota = TenantQuota::parse("inflight=4, sessions=8, tps=2.5, burst=5").expect("parses");
        assert_eq!(quota.max_inflight, 4);
        assert_eq!(quota.max_sessions, 8);
        assert!((quota.turns_per_sec - 2.5).abs() < 1e-9);
        assert!((quota.burst() - 5.0).abs() < 1e-9);
        assert!(TenantQuota::parse("inflight=x").is_err());
        assert!(TenantQuota::parse("widgets=1").is_err());
        assert_eq!(
            TenantQuota::parse("").expect("empty = unlimited"),
            TenantQuota::default()
        );
    }

    #[test]
    fn qos_config_flag_sets_default_and_overrides() {
        let mut config = QosConfig::new();
        config.apply_quota_flag("inflight=2").expect("default spec");
        config
            .apply_quota_flag("alice:inflight=9,tps=1")
            .expect("tenant spec");
        assert_eq!(config.quota_for("bob").max_inflight, 2);
        assert_eq!(config.quota_for("alice").max_inflight, 9);
        assert!(config.apply_quota_flag(":inflight=1").is_err());
    }

    #[test]
    fn gate_enforces_inflight_quota() {
        let mut config = QosConfig::new();
        config.apply_quota_flag("t1:inflight=2").expect("spec");
        let gate = QosGate::new(config);
        let class = AdmitClass::default();
        gate.try_admit("t1", class).expect("first admit");
        gate.try_admit("t1", class).expect("second admit");
        let rejection = gate.try_admit("t1", class).expect_err("third refused");
        assert_eq!(rejection.reason, RejectReason::Inflight);
        assert!(rejection.retry_after_ms > 0);
        // Another tenant is untouched by t1's quota.
        gate.try_admit("t2", class).expect("other tenant admits");
        gate.release("t1");
        gate.try_admit("t1", class).expect("slot freed");
    }

    #[test]
    fn gate_enforces_session_cap_and_release() {
        let mut config = QosConfig::new();
        config.apply_quota_flag("sessions=1").expect("spec");
        let gate = QosGate::new(config);
        let opens = AdmitClass {
            opens_session: true,
            ..AdmitClass::default()
        };
        gate.try_admit("t", opens).expect("first session");
        let rejection = gate.try_admit("t", opens).expect_err("cap reached");
        assert_eq!(rejection.reason, RejectReason::Sessions);
        // Plain requests still pass — only the session slot is gone.
        gate.try_admit("t", AdmitClass::default())
            .expect("plain ok");
        gate.release_session("t");
        gate.try_admit("t", opens).expect("slot returned");
    }

    #[test]
    fn gate_turn_budget_reports_refill_time() {
        let mut config = QosConfig::new();
        config.apply_quota_flag("tps=1,burst=1").expect("spec");
        let gate = QosGate::new(config);
        let turn = AdmitClass {
            consumes_turn: true,
            ..AdmitClass::default()
        };
        gate.try_admit("t", turn).expect("burst token");
        let rejection = gate.try_admit("t", turn).expect_err("budget empty");
        assert_eq!(rejection.reason, RejectReason::TurnBudget);
        // 1 token/s and an empty bucket: the refill hint is ~1s.
        assert!(rejection.retry_after_ms > 500 && rejection.retry_after_ms <= 1000);
    }

    #[test]
    fn turn_budget_retry_hint_never_rounds_to_zero() {
        // A microscopic deficit must not produce retry_after_ms == 0 —
        // a zero hint invites clients into an immediate-retry busy
        // loop. Both rounding paths are pinned: a sub-millisecond wait
        // ceils up to 1, and an f64-underflow wait (deficit / rate
        // rounding to 0.0 seconds) hits the explicit >= 1 clamp.
        let now = Instant::now();
        let quota = TenantQuota {
            turns_per_sec: 10_000.0,
            turn_burst: 1.0,
            ..TenantQuota::default()
        };
        let mut bucket = TokenBucket {
            tokens: 1.0 - 1e-6,
            last_refill: now,
        };
        // `now` again: zero elapsed time, so no refill masks the case.
        let wait = bucket.try_take(now, &quota).expect_err("short a token");
        assert_eq!(wait, 1, "sub-millisecond waits round up, not down");

        let quota = TenantQuota {
            turns_per_sec: f64::MAX,
            turn_burst: 1.0,
            ..TenantQuota::default()
        };
        let mut bucket = TokenBucket {
            tokens: 1.0 - f64::EPSILON / 2.0,
            last_refill: now,
        };
        let wait = bucket.try_take(now, &quota).expect_err("short a token");
        assert!(wait >= 1, "underflowed waits clamp to >= 1 ms, got {wait}");
    }

    #[test]
    fn fair_queue_is_fifo_per_tenant_and_round_robin_across() {
        let mut queue = FairQueue::new(16, LaneWeights::default());
        for index in 0..3 {
            queue
                .push(Lane::Standard, "a", format!("a{index}"))
                .expect("fits");
        }
        queue
            .push(Lane::Standard, "b", "b0".to_owned())
            .expect("fits");
        let order: Vec<String> = std::iter::from_fn(|| queue.pop().map(|(item, _)| item)).collect();
        // Tenants alternate; a's items stay in submission order.
        assert_eq!(order, ["a0", "b0", "a1", "a2"]);
    }

    #[test]
    fn fair_queue_shares_by_lane_weights() {
        let weights = LaneWeights {
            interactive: 2,
            standard: 1,
            batch: 1,
        };
        let mut queue = FairQueue::new(64, weights);
        for index in 0..8 {
            queue
                .push(Lane::Interactive, "chat", format!("i{index}"))
                .expect("fits");
            queue
                .push(Lane::Batch, "eval", format!("b{index}"))
                .expect("fits");
        }
        let order: Vec<String> = std::iter::from_fn(|| queue.pop().map(|(item, _)| item)).collect();
        // Per cycle: 2 interactive, then (standard empty) 1 batch.
        assert_eq!(order[..6], ["i0", "i1", "b0", "i2", "i3", "b1"]);
        // Once interactive drains, batch still finishes.
        assert_eq!(order.len(), 16);
        assert_eq!(order.last().map(String::as_str), Some("b7"));
    }

    #[test]
    fn fair_queue_bounds_and_drain() {
        let mut queue = FairQueue::new(2, LaneWeights::default());
        queue.push(Lane::Batch, "t", 1).expect("fits");
        queue.push(Lane::Interactive, "t", 2).expect("fits");
        assert!(queue.is_full());
        assert_eq!(queue.push(Lane::Standard, "t", 3), Err(3));
        let drained = queue.drain();
        assert_eq!(drained, vec![2, 1]);
        assert!(queue.is_empty());
    }

    #[test]
    fn drain_matching_takes_consecutive_front_matches_only() {
        let mut queue = FairQueue::new(16, LaneWeights::default());
        // Tenant a: even, even, odd, even — the drain must stop at the
        // odd item and never let a4 overtake it.
        for item in [0, 2, 5, 4] {
            queue.push(Lane::Standard, "a", item).expect("fits");
        }
        // Tenant b: a single even item, drainable.
        queue.push(Lane::Standard, "b", 6).expect("fits");
        let (leader, _) = queue.pop().expect("non-empty");
        assert_eq!(leader, 0);
        let riders = queue.drain_matching(8, |item| item % 2 == 0);
        assert_eq!(riders, vec![6, 2], "b was rotated to the front by pop");
        assert_eq!(queue.len(), 2);
        // Remaining items dequeue in unchanged FIFO order.
        let rest: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(item, _)| item)).collect();
        assert_eq!(rest, vec![5, 4]);
    }

    #[test]
    fn drain_matching_respects_the_limit() {
        let mut queue = FairQueue::new(16, LaneWeights::default());
        for index in 0..6 {
            queue.push(Lane::Batch, "t", index).expect("fits");
        }
        let riders = queue.drain_matching(3, |_| true);
        assert_eq!(riders, vec![0, 1, 2]);
        assert_eq!(queue.len(), 3);
        assert!(queue.drain_matching(0, |_| true).is_empty());
    }

    #[test]
    fn ledger_snapshot_is_sorted_and_merges() {
        let ledger = TenantLedger::new();
        ledger.record_admitted("zeta", Lane::Interactive);
        ledger.record_admitted("alpha", Lane::Batch);
        ledger.record_rejected("alpha", Lane::Batch);
        ledger.record_completed("alpha", Lane::Batch, 250);
        let snapshot = ledger.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].tenant, "alpha");
        assert_eq!(snapshot[0].lane, "batch");
        assert_eq!(snapshot[0].rejected, 1);
        assert_eq!(snapshot[0].queue_micros, 250);
        assert_eq!(snapshot[1].tenant, "zeta");

        let merged = merge_rows(&[&snapshot, &snapshot]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].admitted, 2);
        assert_eq!(merged[0].queue_micros, 500);
    }

    #[test]
    fn jain_index_matches_known_points() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_rows_serialize_round_trip() {
        let row = TenantLaneStats {
            tenant: "alice".to_owned(),
            lane: Lane::Interactive.name().to_owned(),
            admitted: 3,
            rejected: 1,
            completed: 2,
            queue_micros: 777,
        };
        let json = serde_json::to_string(&row).expect("serializes");
        let back: TenantLaneStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, row);
    }
}
